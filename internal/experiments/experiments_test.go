package experiments

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// The environment is expensive (corpus build + several acquisition
// runs), so all experiment tests share one.
var (
	envOnce sync.Once
	env     *Env
	t1Rows  []Table1Row
	f6Rows  []Fig6Row
	f7Rows  []Fig7Row
	f8Rows  []Fig8Row
)

func sharedEnv(t *testing.T) *Env {
	t.Helper()
	if testing.Short() {
		t.Skip("experiments are slow; skipped with -short")
	}
	envOnce.Do(func() {
		env = NewEnv()
		t1Rows = env.Table1()
		f6Rows = env.Figure6()
		f7Rows = env.Figure7()
		f8Rows = env.Figure8()
	})
	return env
}

func table1ByDomain(t *testing.T) map[string]Table1Row {
	sharedEnv(t)
	out := map[string]Table1Row{}
	for _, r := range t1Rows {
		out[r.Domain] = r
	}
	return out
}

// --- Table 1 shape assertions (success criteria from DESIGN.md) ---

func TestTable1RowsComplete(t *testing.T) {
	rows := table1ByDomain(t)
	for _, d := range []string{"Airfare", "Auto", "Book", "Job", "RealEst"} {
		r, ok := rows[d]
		if !ok {
			t.Fatalf("missing domain %s", d)
		}
		if r.AvgAttrs <= 0 || r.PctIntNoInst <= 0 {
			t.Errorf("%s: degenerate stats %+v", d, r)
		}
	}
}

func TestTable1InstanceLessnessPervasive(t *testing.T) {
	// The paper: 92% of interfaces contain attributes without instances,
	// 28.1%–74.6% of their attributes lack instances.
	for d, r := range table1ByDomain(t) {
		if r.PctIntNoInst < 80 {
			t.Errorf("%s: only %.0f%% interfaces with instance-less attrs", d, r.PctIntNoInst)
		}
		if r.PctAttrNoInst < 25 || r.PctAttrNoInst > 80 {
			t.Errorf("%s: %.1f%% attrs without instances outside paper's band", d, r.PctAttrNoInst)
		}
	}
}

func TestTable1SurfaceShape(t *testing.T) {
	rows := table1ByDomain(t)
	// Airfare has the lowest Surface success (prepositional labels); book
	// the highest (clean noun labels).
	for d, r := range rows {
		if d == "Airfare" {
			continue
		}
		if rows["Airfare"].Surface >= r.Surface {
			t.Errorf("Airfare Surface (%.1f) should be lowest; %s has %.1f",
				rows["Airfare"].Surface, d, r.Surface)
		}
		if d != "Book" && r.Surface >= rows["Book"].Surface {
			t.Errorf("Book Surface (%.1f) should be highest; %s has %.1f",
				rows["Book"].Surface, d, r.Surface)
		}
	}
}

func TestTable1DeepValidationGains(t *testing.T) {
	rows := table1ByDomain(t)
	// Deep validation lifts the difficult domains (airfare most),
	// and never lowers any domain.
	for d, r := range rows {
		if r.SurfaceDeep < r.Surface {
			t.Errorf("%s: Surface+Deep (%.1f) below Surface (%.1f)", d, r.SurfaceDeep, r.Surface)
		}
	}
	airGain := rows["Airfare"].SurfaceDeep - rows["Airfare"].Surface
	if airGain < 10 {
		t.Errorf("Airfare deep gain = %.1f, want the largest (>=10)", airGain)
	}
	for d, r := range rows {
		if gain := r.SurfaceDeep - r.Surface; gain > airGain+1e-9 {
			t.Errorf("%s deep gain %.1f exceeds airfare's %.1f", d, gain, airGain)
		}
	}
	// Book and job see (nearly) no deep gain, per the paper.
	for _, d := range []string{"Book", "Job"} {
		if gain := rows[d].SurfaceDeep - rows[d].Surface; gain > 5 {
			t.Errorf("%s deep gain = %.1f, want near zero", d, gain)
		}
	}
}

func TestTable1ExpInstShape(t *testing.T) {
	rows := table1ByDomain(t)
	// Airfare and auto: all attributes findable; job and realestate
	// substantially below 100 (generic keywords, measurement units).
	for _, d := range []string{"Airfare", "Auto"} {
		if rows[d].ExpInst < 99.9 {
			t.Errorf("%s ExpInst = %.1f, want 100", d, rows[d].ExpInst)
		}
	}
	for _, d := range []string{"Job", "RealEst"} {
		if rows[d].ExpInst > 90 {
			t.Errorf("%s ExpInst = %.1f, want well below 100", d, rows[d].ExpInst)
		}
	}
}

// --- Figure 6 shape assertions ---

func TestFigure6WebIQImproves(t *testing.T) {
	sharedEnv(t)
	var base, webiq, thresh float64
	for _, r := range f6Rows {
		if r.WithWebIQ < r.Baseline-1e-9 {
			t.Errorf("%s: WebIQ (%.1f) below baseline (%.1f)", r.Domain, r.WithWebIQ, r.Baseline)
		}
		if r.WithThreshold < r.WithWebIQ-2.0 {
			t.Errorf("%s: thresholding (%.1f) far below WebIQ (%.1f)", r.Domain, r.WithThreshold, r.WithWebIQ)
		}
		base += r.Baseline
		webiq += r.WithWebIQ
		thresh += r.WithThreshold
	}
	n := float64(len(f6Rows))
	if webiq/n < base/n+3 {
		t.Errorf("average WebIQ gain = %.1f points, want >= 3 (paper: +6.3)", webiq/n-base/n)
	}
	if base/n < 85 || base/n > 97 {
		t.Errorf("average baseline F1 = %.1f, out of plausible band (paper: 89.5)", base/n)
	}
}

func TestFigure6BaselineImperfectEverywhere(t *testing.T) {
	sharedEnv(t)
	for _, r := range f6Rows {
		if r.Baseline >= 99.9 {
			t.Errorf("%s baseline = %.1f: no headroom for WebIQ", r.Domain, r.Baseline)
		}
	}
}

// --- Figure 7 shape assertions ---

func TestFigure7Monotonic(t *testing.T) {
	sharedEnv(t)
	for _, r := range f7Rows {
		seq := []float64{r.Baseline, r.PlusSurface, r.PlusAttrDeep, r.PlusAll}
		for i := 1; i < len(seq); i++ {
			if seq[i] < seq[i-1]-1.5 {
				t.Errorf("%s: component step %d drops accuracy (%.1f -> %.1f)",
					r.Domain, i, seq[i-1], seq[i])
			}
		}
		if r.PlusAll < r.Baseline {
			t.Errorf("%s: full system below baseline", r.Domain)
		}
	}
}

func TestFigure7SurfaceContributes(t *testing.T) {
	sharedEnv(t)
	var gain float64
	for _, r := range f7Rows {
		gain += r.PlusSurface - r.Baseline
	}
	if gain/float64(len(f7Rows)) < 2 {
		t.Errorf("average Surface contribution = %.1f points, want >= 2", gain/float64(len(f7Rows)))
	}
}

func TestFigure7AttrDeepHelpsAirfare(t *testing.T) {
	sharedEnv(t)
	for _, r := range f7Rows {
		if r.Domain != "Airfare" {
			continue
		}
		if r.PlusAttrDeep < r.PlusSurface {
			t.Errorf("Airfare: Attr-Deep reduced accuracy (%.1f -> %.1f)", r.PlusSurface, r.PlusAttrDeep)
		}
	}
}

// --- Figure 8 shape assertions ---

func TestFigure8OverheadModest(t *testing.T) {
	sharedEnv(t)
	for _, r := range f8Rows {
		if r.SurfaceQueries == 0 {
			t.Errorf("%s: no surface queries recorded", r.Domain)
		}
		if r.SurfaceTime <= 0 {
			t.Errorf("%s: no surface time recorded", r.Domain)
		}
		// The paper's totals are 5.7–11 minutes: same order as matching.
		if r.Total() > 10*r.MatchTime+30*time.Minute {
			t.Errorf("%s: overhead %.1fm disproportionate to matching %.1fm",
				r.Domain, r.Total().Minutes(), r.MatchTime.Minutes())
		}
	}
}

func TestFigure8AttrDeepProbesWhereExpected(t *testing.T) {
	sharedEnv(t)
	probes := map[string]int{}
	for _, r := range f8Rows {
		probes[r.Domain] = r.AttrDeepProbes
	}
	if probes["Airfare"] == 0 {
		t.Error("airfare should issue deep probes")
	}
}

// --- Renderers ---

func TestRenderers(t *testing.T) {
	sharedEnv(t)
	for name, s := range map[string]string{
		"table1": RenderTable1(t1Rows),
		"fig6":   RenderFigure6(f6Rows),
		"fig7":   RenderFigure7(f7Rows),
		"fig8":   RenderFigure8(f8Rows),
	} {
		if !strings.Contains(s, "Airfare") || len(strings.Split(s, "\n")) < 6 {
			t.Errorf("%s render looks wrong:\n%s", name, s)
		}
	}
	if !strings.Contains(RenderTable1(t1Rows), "Average") {
		t.Error("table1 missing average row")
	}
}

func TestRenderEmpty(t *testing.T) {
	if RenderTable1(nil) == "" || RenderFigure6(nil) == "" {
		t.Error("renderers should emit headers even with no rows")
	}
}
