// Package experiments reproduces the paper's evaluation: Table 1
// (dataset characteristics and instance-acquisition success rates),
// Figure 6 (matching accuracy with WebIQ and thresholding), Figure 7
// (component contributions), and Figure 8 (overhead analysis). Each
// experiment has a runner returning structured rows and a text renderer
// producing the same rows the paper reports.
package experiments

import (
	"time"

	"webiq/internal/dataset"
	"webiq/internal/deepweb"
	"webiq/internal/kb"
	"webiq/internal/matcher"
	"webiq/internal/schema"
	"webiq/internal/surfaceweb"
	"webiq/internal/webiq"
)

// Env is a fully-wired experimental environment: the domain knowledge
// bases, a Surface-Web corpus indexed once, and configuration for the
// dataset generator, Deep-Web sources, WebIQ, and the matcher.
type Env struct {
	Domains []*kb.Domain
	Engine  *surfaceweb.Engine

	// Cache wraps Engine with the sharded query cache. Experiments that
	// report accuracy (Table 1, Figures 6–7) consult it when
	// UseQueryCache is set: results are identical — cached answers are
	// the engine's answers — and repeated conditions over the same
	// dataset stop re-paying for repeated queries. Figure 8 always
	// bypasses it, because its whole point is charging the paper's full
	// per-query overhead.
	Cache         *surfaceweb.CachedEngine
	UseQueryCache bool

	DataCfg   dataset.Config
	CorpusCfg surfaceweb.CorpusConfig
	DeepCfg   deepweb.Config
	WebIQCfg  webiq.Config
	MatchCfg  matcher.Config

	// Thresholded is the τ used for the "+ threshold" matcher variant
	// (the paper uses .1, roughly the average of the thresholds IceQ
	// learns across the five domains).
	Thresholded float64

	// MatchCostPerPair is the simulated matching cost charged per
	// attribute pair for the Figure-8 overhead analysis. It is
	// calibrated so per-domain matching times land in the paper's
	// 1.9–4.7 minute range on the 20-interface datasets.
	MatchCostPerPair time.Duration
}

// NewEnv builds the default environment: the five domains, the
// synthetic corpus, and paper-faithful parameters (seed 1).
func NewEnv() *Env { return NewEnvWithSeed(1) }

// NewEnvWithSeed builds an environment whose generators all use the
// given seed — corpus included, so the whole world is re-rolled.
func NewEnvWithSeed(seed int64) *Env {
	e := &Env{
		Domains:          kb.Domains(),
		DataCfg:          dataset.DefaultConfig(),
		CorpusCfg:        surfaceweb.DefaultCorpusConfig(),
		DeepCfg:          deepweb.DefaultConfig(),
		WebIQCfg:         webiq.DefaultConfig(),
		MatchCfg:         matcher.DefaultConfig(),
		Thresholded:      0.1,
		MatchCostPerPair: 8 * time.Millisecond,
	}
	e.DataCfg.Seed = seed
	e.CorpusCfg.Seed = seed
	e.DeepCfg.Seed = seed
	e.Engine = surfaceweb.NewEngine()
	surfaceweb.BuildCorpus(e.Engine, e.Domains, e.CorpusCfg)
	e.Cache = surfaceweb.NewCachedEngine(e.Engine, surfaceweb.DefaultCacheShards)
	e.UseQueryCache = true
	return e
}

// searchEngine returns the engine acquisitions should query: the cache
// when enabled, the raw engine otherwise.
func (e *Env) searchEngine() webiq.SearchEngine {
	if e.UseQueryCache && e.Cache != nil {
		return e.Cache
	}
	return e.Engine
}

// freshDataset generates an unmutated dataset for one domain.
// Acquisition mutates attributes, so every experimental condition gets
// its own copy (identical by determinism).
func (e *Env) freshDataset(dom *kb.Domain) *schema.Dataset {
	return dataset.Generate(dom, e.DataCfg)
}

// acquirer wires a WebIQ acquirer for one domain dataset with the given
// component set, including accounting probes. It queries through
// e.searchEngine(), so UseQueryCache governs whether repeats are
// deduplicated; Figure 8 uses acquirerUncached instead.
func (e *Env) acquirer(ds *schema.Dataset, dom *kb.Domain, comps webiq.Components) (*webiq.Acquirer, *deepweb.Pool) {
	return e.acquirerOn(e.searchEngine(), ds, dom, comps)
}

// acquirerUncached wires an acquirer against the raw engine regardless
// of UseQueryCache — every repeated query is issued and charged, the
// accounting regime of the paper's Figure-8 overhead analysis.
func (e *Env) acquirerUncached(ds *schema.Dataset, dom *kb.Domain, comps webiq.Components) (*webiq.Acquirer, *deepweb.Pool) {
	return e.acquirerOn(e.Engine, ds, dom, comps)
}

func (e *Env) acquirerOn(se webiq.SearchEngine, ds *schema.Dataset, dom *kb.Domain, comps webiq.Components) (*webiq.Acquirer, *deepweb.Pool) {
	pool := deepweb.BuildPool(ds, dom, e.DeepCfg)
	v := webiq.NewValidator(se, e.WebIQCfg)
	acq := webiq.NewAcquirer(
		webiq.NewSurface(se, v, e.WebIQCfg),
		webiq.NewAttrDeep(pool, e.WebIQCfg),
		webiq.NewAttrSurface(v, e.WebIQCfg),
		comps, e.WebIQCfg)
	acq.SetAccounting(
		func() (time.Duration, int) { return e.Engine.VirtualTime(), e.Engine.QueryCount() },
		func() (time.Duration, int) { return pool.VirtualTime(), pool.QueryCount() },
	)
	return acq, pool
}

// matchF1 runs the matcher at threshold tau and scores against gold.
func (e *Env) matchF1(ds *schema.Dataset, tau float64) matcher.Metrics {
	cfg := e.MatchCfg
	cfg.Threshold = tau
	res := matcher.New(cfg).Match(ds)
	return matcher.Evaluate(res.Pairs, ds.GoldPairs())
}
