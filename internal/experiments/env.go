// Package experiments reproduces the paper's evaluation: Table 1
// (dataset characteristics and instance-acquisition success rates),
// Figure 6 (matching accuracy with WebIQ and thresholding), Figure 7
// (component contributions), and Figure 8 (overhead analysis). Each
// experiment has a runner returning structured rows and a text renderer
// producing the same rows the paper reports.
package experiments

import (
	"time"

	"webiq/internal/dataset"
	"webiq/internal/deepweb"
	"webiq/internal/kb"
	"webiq/internal/matcher"
	"webiq/internal/schema"
	"webiq/internal/surfaceweb"
	"webiq/internal/webiq"
)

// Env is a fully-wired experimental environment: the domain knowledge
// bases, a Surface-Web corpus indexed once, and configuration for the
// dataset generator, Deep-Web sources, WebIQ, and the matcher.
type Env struct {
	Domains []*kb.Domain
	Engine  *surfaceweb.Engine

	DataCfg   dataset.Config
	CorpusCfg surfaceweb.CorpusConfig
	DeepCfg   deepweb.Config
	WebIQCfg  webiq.Config
	MatchCfg  matcher.Config

	// Thresholded is the τ used for the "+ threshold" matcher variant
	// (the paper uses .1, roughly the average of the thresholds IceQ
	// learns across the five domains).
	Thresholded float64

	// MatchCostPerPair is the simulated matching cost charged per
	// attribute pair for the Figure-8 overhead analysis. It is
	// calibrated so per-domain matching times land in the paper's
	// 1.9–4.7 minute range on the 20-interface datasets.
	MatchCostPerPair time.Duration
}

// NewEnv builds the default environment: the five domains, the
// synthetic corpus, and paper-faithful parameters (seed 1).
func NewEnv() *Env { return NewEnvWithSeed(1) }

// NewEnvWithSeed builds an environment whose generators all use the
// given seed — corpus included, so the whole world is re-rolled.
func NewEnvWithSeed(seed int64) *Env {
	e := &Env{
		Domains:          kb.Domains(),
		DataCfg:          dataset.DefaultConfig(),
		CorpusCfg:        surfaceweb.DefaultCorpusConfig(),
		DeepCfg:          deepweb.DefaultConfig(),
		WebIQCfg:         webiq.DefaultConfig(),
		MatchCfg:         matcher.DefaultConfig(),
		Thresholded:      0.1,
		MatchCostPerPair: 8 * time.Millisecond,
	}
	e.DataCfg.Seed = seed
	e.CorpusCfg.Seed = seed
	e.DeepCfg.Seed = seed
	e.Engine = surfaceweb.NewEngine()
	surfaceweb.BuildCorpus(e.Engine, e.Domains, e.CorpusCfg)
	return e
}

// freshDataset generates an unmutated dataset for one domain.
// Acquisition mutates attributes, so every experimental condition gets
// its own copy (identical by determinism).
func (e *Env) freshDataset(dom *kb.Domain) *schema.Dataset {
	return dataset.Generate(dom, e.DataCfg)
}

// acquirer wires a WebIQ acquirer for one domain dataset with the given
// component set, including accounting probes.
func (e *Env) acquirer(ds *schema.Dataset, dom *kb.Domain, comps webiq.Components) (*webiq.Acquirer, *deepweb.Pool) {
	pool := deepweb.BuildPool(ds, dom, e.DeepCfg)
	v := webiq.NewValidator(e.Engine, e.WebIQCfg)
	acq := webiq.NewAcquirer(
		webiq.NewSurface(e.Engine, v, e.WebIQCfg),
		webiq.NewAttrDeep(pool, e.WebIQCfg),
		webiq.NewAttrSurface(v, e.WebIQCfg),
		comps, e.WebIQCfg)
	acq.SetAccounting(
		func() (time.Duration, int) { return e.Engine.VirtualTime(), e.Engine.QueryCount() },
		func() (time.Duration, int) { return pool.VirtualTime(), pool.QueryCount() },
	)
	return acq, pool
}

// matchF1 runs the matcher at threshold tau and scores against gold.
func (e *Env) matchF1(ds *schema.Dataset, tau float64) matcher.Metrics {
	cfg := e.MatchCfg
	cfg.Threshold = tau
	res := matcher.New(cfg).Match(ds)
	return matcher.Evaluate(res.Pairs, ds.GoldPairs())
}
