package experiments

import (
	"strings"
	"testing"
)

func TestTauSweepShape(t *testing.T) {
	env := sharedEnv(t)
	points := env.TauSweep([]float64{0, 0.1, 0.5})
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// The enriched system dominates the baseline at every threshold.
	for _, p := range points {
		if p.WithIQ < p.Baseline-1e-9 {
			t.Errorf("tau %.2f: WebIQ (%.1f) below baseline (%.1f)", p.Tau, p.WithIQ, p.Baseline)
		}
	}
	// A very aggressive threshold destroys recall for both.
	if points[2].Baseline >= points[0].Baseline {
		t.Errorf("tau=0.5 baseline (%.1f) not below tau=0 (%.1f)",
			points[2].Baseline, points[0].Baseline)
	}
}

func TestTauSweepDefaults(t *testing.T) {
	env := sharedEnv(t)
	points := env.TauSweep(nil)
	if len(points) < 5 {
		t.Errorf("default grid too small: %d points", len(points))
	}
}

func TestSeedSweepSingle(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep is slow")
	}
	st := SeedSweep(1)
	if st.Seeds != 1 {
		t.Errorf("seeds = %d", st.Seeds)
	}
	if st.WithIQMean <= st.BaselineMean {
		t.Errorf("WebIQ mean (%.1f) not above baseline mean (%.1f)",
			st.WithIQMean, st.BaselineMean)
	}
	if st.BaselineStd != 0 || st.WithIQStd != 0 {
		t.Error("single-seed std must be zero")
	}
	if st.SuccessMean <= 0 {
		t.Error("no acquisition success recorded")
	}
}

func TestRenderSweeps(t *testing.T) {
	env := sharedEnv(t)
	s := RenderTauSweep(env.TauSweep([]float64{0, 0.1}))
	if !strings.Contains(s, "tau") || len(strings.Split(s, "\n")) < 3 {
		t.Errorf("tau sweep render:\n%s", s)
	}
	r := RenderSeedSweep(SeedStats{Seeds: 2, BaselineMean: 90, WithIQMean: 99})
	if !strings.Contains(r, "2 seeds") || !strings.Contains(r, "99.0") {
		t.Errorf("seed sweep render:\n%s", r)
	}
}
