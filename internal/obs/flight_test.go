package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestFlightRingRetainsAndOrders(t *testing.T) {
	f := NewFlightRecorder(FlightOptions{Capacity: 8})
	for i := 0; i < 20; i++ {
		f.Record(WideEvent{Route: "r", Status: 200, TimeNS: int64(i + 1)})
	}
	evs := f.EventsSince(0)
	if len(evs) != 8 {
		t.Fatalf("ring retained %d events, want capacity 8", len(evs))
	}
	for i, ev := range evs {
		if want := int64(13 + i); ev.TimeNS != want {
			t.Errorf("event %d: TimeNS=%d, want %d (oldest-first order)", i, ev.TimeNS, want)
		}
	}
	if got := f.EventCount(); got != 20 {
		t.Errorf("EventCount=%d, want 20", got)
	}
	// Cutoff filtering.
	if got := len(f.EventsSince(18)); got != 3 {
		t.Errorf("EventsSince(18) returned %d events, want 3", got)
	}
}

func TestFlightRingConcurrentWriters(t *testing.T) {
	f := NewFlightRecorder(FlightOptions{Capacity: 64})
	var wg sync.WaitGroup
	const writers, per = 8, 200
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				f.Record(WideEvent{Route: fmt.Sprintf("r%d", w), Status: 200})
				if i%16 == 0 {
					f.EventsSince(0) // concurrent reads
				}
			}
		}(w)
	}
	wg.Wait()
	if got := f.EventCount(); got != writers*per {
		t.Fatalf("EventCount=%d, want %d", got, writers*per)
	}
	evs := f.EventsSince(0)
	if len(evs) != 64 {
		t.Fatalf("ring holds %d, want 64", len(evs))
	}
	for _, ev := range evs {
		if ev.Route == "" || ev.Status != 200 {
			t.Fatalf("torn event read: %+v", ev)
		}
	}
}

func TestParseTriggers(t *testing.T) {
	def, err := ParseTriggers("")
	if err != nil || !def.On5xx || def.Slow != 2*time.Second || !def.OnBreakerOpen || !def.OnShed {
		t.Fatalf("empty spec => %+v, err %v; want defaults", def, err)
	}
	none, err := ParseTriggers("none")
	if err != nil || none != (TriggerConfig{}) {
		t.Fatalf("none => %+v, err %v", none, err)
	}
	tc, err := ParseTriggers("5xx,slow=500ms,breaker,shed,p99=1s:30,debounce=10s")
	if err != nil {
		t.Fatal(err)
	}
	if !tc.On5xx || tc.Slow != 500*time.Millisecond || !tc.OnBreakerOpen || !tc.OnShed ||
		tc.P99Budget != time.Second || tc.P99MinCount != 30 || tc.Debounce != 10*time.Second {
		t.Fatalf("parsed %+v", tc)
	}
	// Round trip through String.
	back, err := ParseTriggers(tc.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", tc.String(), err)
	}
	back.P99MinCount = tc.P99MinCount // String does not render the count
	if back != tc {
		t.Errorf("round trip: %+v != %+v", back, tc)
	}
	for _, bad := range []string{"slow", "p99=x", "bogus", "slow=..."} {
		if _, err := ParseTriggers(bad); err == nil {
			t.Errorf("ParseTriggers(%q) accepted", bad)
		}
	}
}

func TestTriggerMatch(t *testing.T) {
	tc := DefaultTriggers()
	cases := []struct {
		ev   WideEvent
		want string
	}{
		{WideEvent{Status: 200, Seconds: 0.01}, ""},
		{WideEvent{Status: 500}, "5xx"},
		{WideEvent{Status: 503, ShedReason: "queue-full"}, "shed"},
		{WideEvent{Status: 200, Seconds: 3.0}, "slow"},
	}
	for _, c := range cases {
		if got := tc.Match(c.ev); got != c.want {
			t.Errorf("Match(%+v) = %q, want %q", c.ev, got, c.want)
		}
	}
}

// TestSnapshotBundle pins the bundle contract: a synchronous snapshot
// captures the windowed wide events, at least one runtime sample, the
// metrics snapshot + delta, a heap profile, and round-trips through
// ReadBundle.
func TestSnapshotBundle(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry()
	tr := NewTracer(nil)
	c := reg.Counter("test_total", "")
	f := NewFlightRecorder(FlightOptions{
		Dir:                dir,
		Window:             time.Minute,
		Registry:           reg,
		Tracer:             tr,
		Sampler:            NewRuntimeSampler(16, time.Millisecond),
		CPUProfileDuration: -1, // keep the test fast
		Identity:           map[string]string{"seed": "1"},
	})
	f.Start(0)
	c.Add(3)
	f.Record(WideEvent{Route: "unified", Status: 500, Seconds: 0.2, TraceID: "tr-err"})
	f.Record(WideEvent{Route: "stats", Status: 200, Seconds: 0.001})

	// An in-flight root span must show up in the bundle.
	live := tr.StartRoot("unified-build")
	defer live.End()

	b, path, err := f.Snapshot("", "")
	if err != nil {
		t.Fatal(err)
	}
	if b.Reason != "manual" || b.Schema != BundleSchema {
		t.Errorf("reason=%q schema=%d", b.Reason, b.Schema)
	}
	if len(b.WideEvents) != 2 {
		t.Fatalf("bundle has %d wide events, want 2", len(b.WideEvents))
	}
	if len(b.Runtime) == 0 {
		t.Error("bundle has no runtime samples")
	}
	if b.Identity["seed"] != "1" {
		t.Errorf("identity = %v", b.Identity)
	}
	if got := b.Metrics["test_total"]; got != 3 {
		t.Errorf("metrics snapshot test_total=%v, want 3", got)
	}
	if got := b.MetricsDelta["test_total"]; got != 3 {
		t.Errorf("metrics delta test_total=%v, want 3 (baseline was 0)", got)
	}
	if len(b.HeapProfile) == 0 {
		t.Error("no heap profile captured")
	}
	found := false
	for _, r := range b.InFlight {
		if r.Name == "unified-build" && r.TraceID == live.TraceID() {
			found = true
		}
	}
	if !found {
		t.Errorf("in-flight roots missing live span: %+v", b.InFlight)
	}

	back, err := ReadBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Reason != b.Reason || len(back.WideEvents) != len(b.WideEvents) {
		t.Errorf("round trip mismatch: %+v", back)
	}

	// A second snapshot's delta starts from the first's values.
	c.Add(2)
	b2, _, err := f.Snapshot("again", "")
	if err != nil {
		t.Fatal(err)
	}
	if got := b2.MetricsDelta["test_total"]; got != 2 {
		t.Errorf("second delta test_total=%v, want 2", got)
	}
}

func TestTriggerDebounceAndPrune(t *testing.T) {
	dir := t.TempDir()
	f := NewFlightRecorder(FlightOptions{
		Dir:                dir,
		MaxBundles:         2,
		CPUProfileDuration: -1,
		Triggers:           TriggerConfig{Debounce: time.Hour},
	})
	f.Start(0)
	if !f.Trigger("5xx", "") {
		t.Fatal("first trigger suppressed")
	}
	if f.Trigger("5xx", "") {
		t.Error("second trigger not debounced")
	}
	// Wait for the async dump to land.
	deadline := time.Now().Add(5 * time.Second)
	for {
		infos, err := f.Bundles()
		if err != nil {
			t.Fatal(err)
		}
		if len(infos) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("async trigger dump never produced a bundle")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Pruning keeps only MaxBundles files.
	for i := 0; i < 3; i++ {
		time.Sleep(2 * time.Millisecond) // distinct timestamps in names
		if _, _, err := f.Snapshot(fmt.Sprintf("r%d", i), ""); err != nil {
			t.Fatal(err)
		}
	}
	infos, err := f.Bundles()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("after prune: %d bundles, want 2", len(infos))
	}

	// BundlePath rejects traversal.
	for _, bad := range []string{"", "../x.json", "flight-x.json/../../etc", "nope.json"} {
		if _, err := f.BundlePath(bad); err == nil {
			t.Errorf("BundlePath(%q) accepted", bad)
		}
	}
	if _, err := f.BundlePath(infos[0].Name); err != nil {
		t.Errorf("BundlePath(%q): %v", infos[0].Name, err)
	}
}

func TestFlightNilSafety(t *testing.T) {
	var f *FlightRecorder
	f.Record(WideEvent{})
	f.Close()
	f.Start(time.Second)
	if f.EventsSince(0) != nil || f.EventCount() != 0 || f.Trigger("x", "") {
		t.Error("nil recorder not inert")
	}
	if _, _, err := f.Snapshot("", ""); err == nil {
		t.Error("nil recorder Snapshot succeeded")
	}
	var rs *RuntimeSampler
	rs.Start(time.Second)
	rs.Stop()
	if s := rs.Sample(); s.Goroutines <= 0 {
		t.Error("nil sampler Sample returned empty sample")
	}
}

func TestBundleFilesAtomic(t *testing.T) {
	// No stray temp files after dumps.
	dir := t.TempDir()
	f := NewFlightRecorder(FlightOptions{Dir: dir, CPUProfileDuration: -1})
	f.Start(0)
	if _, _, err := f.Snapshot("x", ""); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}
