package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The flight recorder is the after-the-fact half of the observability
// layer: /metrics and /stats show the present, the recorder retains the
// recent past. It keeps one wide event — a single structured record
// merging route, status, latency, trace ID, substrate-usage deltas,
// degradation totals, breaker states, and admission-queue depth — per
// request in a lock-light ring buffer, samples the Go runtime
// periodically, and, when a trigger rule fires (5xx, slow request,
// breaker-open transition, admission shed, p99 budget breach), dumps a
// timestamped diagnostic bundle: the recent wide events, the live span
// trees of in-flight traces, a metrics snapshot with deltas, and
// auto-captured pprof CPU/heap profiles. With no recorder installed
// every hook is nil-safe and free.

// WideEvent is one request, wide: everything the server knew about the
// request when it finished, denormalized into a single record so a
// bundle (or an operator grepping NDJSON) never has to join streams.
// Substrate fields are deltas of process-global counters taken at
// request start/end; under concurrency they attribute overlapping work
// approximately, which is the right trade for a diagnostic record.
type WideEvent struct {
	// TimeNS is the completion time, nanoseconds since the Unix epoch.
	TimeNS int64 `json:"time_ns"`
	// Route is the coarse route label; Method/Path the concrete request.
	Route  string `json:"route"`
	Method string `json:"method,omitempty"`
	Path   string `json:"path,omitempty"`
	// Status is the HTTP status; Seconds the wall-clock latency.
	Status  int     `json:"status"`
	Seconds float64 `json:"seconds"`
	// TraceID links the event to /trace/{id}; empty for shed requests,
	// which never reach the tracing middleware.
	TraceID string `json:"trace_id,omitempty"`
	// ShedReason is set when the admission queue rejected the request
	// (queue-full, draining, canceled).
	ShedReason string `json:"shed_reason,omitempty"`
	// EngineQueries / ProbeQueries are how many search-engine queries and
	// deep-web probes the substrate served while this request ran.
	EngineQueries int `json:"engine_queries,omitempty"`
	ProbeQueries  int `json:"probe_queries,omitempty"`
	// CacheHits / CacheMisses are engine query-cache deltas, when a
	// cached engine is in the path (zero otherwise).
	CacheHits   int `json:"cache_hits,omitempty"`
	CacheMisses int `json:"cache_misses,omitempty"`
	// Degradations is the cumulative graceful-degradation count across
	// all domains when the request finished.
	Degradations int `json:"degradations,omitempty"`
	// BreakerSearch / BreakerDeep are the circuit-breaker states at
	// completion, when fault-injection clients are installed.
	BreakerSearch string `json:"breaker_search,omitempty"`
	BreakerDeep   string `json:"breaker_deep,omitempty"`
	// AdmInFlight / AdmQueued are the admission-queue depths at
	// completion, when admission control is on.
	AdmInFlight int `json:"adm_in_flight,omitempty"`
	AdmQueued   int `json:"adm_queued,omitempty"`
	// Trigger names the trigger rule this event fired, if any.
	Trigger string `json:"trigger,omitempty"`
}

// eventSlot is one ring position. Writers claim a slot by atomic
// sequence and take only that slot's mutex, so concurrent writers
// contend only when the ring wraps onto a slot being read.
type eventSlot struct {
	mu  sync.Mutex
	seq uint64 // 0 = never written; else the 1-based claim sequence
	ev  WideEvent
}

// DefFlightCapacity is the default wide-event ring capacity.
const DefFlightCapacity = 8192

// DefFlightWindow is the default wide-event window included in bundles.
const DefFlightWindow = 30 * time.Second

// FlightOptions configure a FlightRecorder.
type FlightOptions struct {
	// Dir is where diagnostic bundles are written; required for dumps
	// (Snapshot/Trigger fail without it).
	Dir string
	// Capacity is the wide-event ring size (DefFlightCapacity when 0).
	Capacity int
	// Window is how much recent wide-event history a bundle includes
	// (DefFlightWindow when 0).
	Window time.Duration
	// Triggers are the anomaly rules that fire automatic bundle dumps.
	Triggers TriggerConfig
	// MaxBundles caps how many bundle files Dir retains; older ones are
	// deleted after each dump (16 when 0, unbounded when < 0).
	MaxBundles int
	// CPUProfileDuration is how long the auto-captured CPU profile runs
	// (500ms when 0, disabled when < 0).
	CPUProfileDuration time.Duration
	// Identity labels every bundle with the world being served (snapshot
	// fingerprint, seed, scale, build info).
	Identity map[string]string
	// Registry, Tracer, Sampler supply the bundle's metrics snapshot,
	// span trees, and runtime samples; each may be nil.
	Registry *Registry
	Tracer   *Tracer
	Sampler  *RuntimeSampler
}

// FlightRecorder is the wide-event ring plus the bundle dumper. All
// methods are safe for concurrent use and nil-safe.
type FlightRecorder struct {
	opts  FlightOptions
	slots []eventSlot
	next  atomic.Uint64

	// lastDumpNS debounces automatic triggers; manual snapshots bypass it.
	lastDumpNS atomic.Int64
	cpuBusy    atomic.Bool

	dumpMu   sync.Mutex
	baseline map[string]float64 // metric values at last dump (or Start)

	mEvents  *Counter
	mBundles *CounterVec // reason
	mDropped *Counter
}

// NewFlightRecorder returns a recorder; Start begins runtime sampling.
func NewFlightRecorder(opts FlightOptions) *FlightRecorder {
	if opts.Capacity <= 0 {
		opts.Capacity = DefFlightCapacity
	}
	if opts.Window <= 0 {
		opts.Window = DefFlightWindow
	}
	if opts.MaxBundles == 0 {
		opts.MaxBundles = 16
	}
	if opts.CPUProfileDuration == 0 {
		opts.CPUProfileDuration = 500 * time.Millisecond
	}
	f := &FlightRecorder{
		opts:  opts,
		slots: make([]eventSlot, opts.Capacity),
	}
	if r := opts.Registry; r != nil {
		f.mEvents = r.Counter("webiq_flight_events_total", "Wide events captured by the flight recorder.")
		f.mBundles = r.CounterVec("webiq_flight_bundles_total", "Diagnostic bundles dumped, by trigger reason.", "reason")
		f.mDropped = r.Counter("webiq_flight_trigger_debounced_total", "Trigger firings suppressed by the dump debounce window.")
	}
	return f
}

// Start snapshots the metric baseline and begins background runtime
// sampling at the given interval (no sampling when interval <= 0 or the
// recorder has no sampler). Call Close to stop.
func (f *FlightRecorder) Start(sampleInterval time.Duration) {
	if f == nil {
		return
	}
	f.dumpMu.Lock()
	f.baseline = f.opts.Registry.Values()
	f.dumpMu.Unlock()
	if sampleInterval > 0 {
		f.opts.Sampler.Start(sampleInterval)
	}
}

// Close stops background sampling. The ring remains readable.
func (f *FlightRecorder) Close() {
	if f == nil {
		return
	}
	f.opts.Sampler.Stop()
}

// Triggers returns the recorder's trigger rules.
func (f *FlightRecorder) Triggers() TriggerConfig {
	if f == nil {
		return TriggerConfig{}
	}
	return f.opts.Triggers
}

// Window returns the bundle's wide-event window.
func (f *FlightRecorder) Window() time.Duration {
	if f == nil {
		return 0
	}
	return f.opts.Window
}

// Record appends one wide event to the ring.
func (f *FlightRecorder) Record(ev WideEvent) {
	if f == nil {
		return
	}
	if ev.TimeNS == 0 {
		ev.TimeNS = time.Now().UnixNano()
	}
	n := f.next.Add(1)
	s := &f.slots[(n-1)%uint64(len(f.slots))]
	s.mu.Lock()
	s.seq = n
	s.ev = ev
	s.mu.Unlock()
	f.mEvents.Inc()
}

// EventsSince returns every retained wide event completed at or after
// cutoffNS (Unix nanoseconds), oldest first. cutoffNS <= 0 returns the
// whole ring.
func (f *FlightRecorder) EventsSince(cutoffNS int64) []WideEvent {
	if f == nil {
		return nil
	}
	type seqEv struct {
		seq uint64
		ev  WideEvent
	}
	got := make([]seqEv, 0, len(f.slots))
	for i := range f.slots {
		s := &f.slots[i]
		s.mu.Lock()
		if s.seq != 0 && (cutoffNS <= 0 || s.ev.TimeNS >= cutoffNS) {
			got = append(got, seqEv{s.seq, s.ev})
		}
		s.mu.Unlock()
	}
	sort.Slice(got, func(i, j int) bool { return got[i].seq < got[j].seq })
	out := make([]WideEvent, len(got))
	for i, g := range got {
		out[i] = g.ev
	}
	return out
}

// EventCount returns how many wide events have been recorded in total
// (not how many the ring currently retains).
func (f *FlightRecorder) EventCount() uint64 {
	if f == nil {
		return 0
	}
	return f.next.Load()
}

// --- Trigger rules ---

// DefTriggerDebounce is the minimum gap between automatic bundle dumps.
const DefTriggerDebounce = 30 * time.Second

// TriggerConfig is the set of anomaly rules that fire automatic bundle
// dumps. The zero value fires on nothing.
type TriggerConfig struct {
	// On5xx dumps on any 5xx response.
	On5xx bool `json:"on_5xx"`
	// Slow dumps on a request at or above this latency (0 disables).
	Slow time.Duration `json:"slow_ns"`
	// OnBreakerOpen dumps when a circuit breaker transitions to open.
	OnBreakerOpen bool `json:"on_breaker_open"`
	// OnShed dumps when the admission queue sheds a request.
	OnShed bool `json:"on_shed"`
	// P99Budget dumps when a route's p99 exceeds this budget (0
	// disables); routes need P99MinCount observations first.
	P99Budget time.Duration `json:"p99_budget_ns"`
	// P99MinCount guards the p99 rule against small-sample noise
	// (default 50 when P99Budget is set and this is 0).
	P99MinCount uint64 `json:"p99_min_count,omitempty"`
	// Debounce is the minimum gap between automatic dumps
	// (DefTriggerDebounce when 0, no debounce when < 0).
	Debounce time.Duration `json:"debounce_ns"`
}

// DefaultTriggers fire on 5xx, 2s-slow requests, breaker-open
// transitions, and admission sheds.
func DefaultTriggers() TriggerConfig {
	return TriggerConfig{On5xx: true, Slow: 2 * time.Second, OnBreakerOpen: true, OnShed: true}
}

// ParseTriggers parses a comma-separated trigger spec:
//
//	5xx | slow=DUR | breaker | shed | p99=DUR[:MINCOUNT] | debounce=DUR
//
// e.g. "5xx,slow=500ms,breaker,shed,p99=1s,debounce=10s". An empty spec
// yields DefaultTriggers; the spec "none" yields no triggers (manual
// snapshots only).
func ParseTriggers(spec string) (TriggerConfig, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return DefaultTriggers(), nil
	}
	var tc TriggerConfig
	if spec == "none" {
		return tc, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		key, val, hasVal := strings.Cut(part, "=")
		switch key {
		case "5xx":
			tc.On5xx = true
		case "breaker":
			tc.OnBreakerOpen = true
		case "shed":
			tc.OnShed = true
		case "slow", "debounce", "p99":
			if !hasVal {
				return tc, fmt.Errorf("obs: trigger %q needs a duration (e.g. %s=500ms)", key, key)
			}
			if key == "p99" {
				if dur, cnt, ok := strings.Cut(val, ":"); ok {
					n := uint64(0)
					if _, err := fmt.Sscanf(cnt, "%d", &n); err != nil {
						return tc, fmt.Errorf("obs: bad p99 min count %q", cnt)
					}
					tc.P99MinCount = n
					val = dur
				}
			}
			d, err := time.ParseDuration(val)
			if err != nil {
				return tc, fmt.Errorf("obs: bad %s duration %q: %v", key, val, err)
			}
			switch key {
			case "slow":
				tc.Slow = d
			case "debounce":
				tc.Debounce = d
			case "p99":
				tc.P99Budget = d
			}
		case "":
			// Tolerate stray commas.
		default:
			return tc, fmt.Errorf("obs: unknown trigger %q (have 5xx, slow=DUR, breaker, shed, p99=DUR, debounce=DUR)", key)
		}
	}
	if tc.P99Budget > 0 && tc.P99MinCount == 0 {
		tc.P99MinCount = 50
	}
	return tc, nil
}

// String renders the config back into ParseTriggers form.
func (tc TriggerConfig) String() string {
	var parts []string
	if tc.On5xx {
		parts = append(parts, "5xx")
	}
	if tc.Slow > 0 {
		parts = append(parts, "slow="+tc.Slow.String())
	}
	if tc.OnBreakerOpen {
		parts = append(parts, "breaker")
	}
	if tc.OnShed {
		parts = append(parts, "shed")
	}
	if tc.P99Budget > 0 {
		parts = append(parts, "p99="+tc.P99Budget.String())
	}
	if tc.Debounce > 0 {
		parts = append(parts, "debounce="+tc.Debounce.String())
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// Match returns the name of the first trigger rule the event fires, or
// "". Breaker-open transitions are reported out of band (they are not
// request events); see Trigger.
func (tc TriggerConfig) Match(ev WideEvent) string {
	if tc.OnShed && ev.ShedReason != "" {
		return "shed"
	}
	if tc.On5xx && ev.Status >= 500 {
		return "5xx"
	}
	if tc.Slow > 0 && ev.Seconds >= tc.Slow.Seconds() {
		return "slow"
	}
	return ""
}

// Trigger requests an automatic bundle dump for the given reason. It
// debounces (one dump per Debounce window) and runs the dump in the
// background; it reports whether a dump was actually started.
func (f *FlightRecorder) Trigger(reason, traceID string) bool {
	if f == nil || f.opts.Dir == "" {
		return false
	}
	deb := f.opts.Triggers.Debounce
	if deb == 0 {
		deb = DefTriggerDebounce
	}
	now := time.Now().UnixNano()
	if deb > 0 {
		last := f.lastDumpNS.Load()
		if now-last < int64(deb) || !f.lastDumpNS.CompareAndSwap(last, now) {
			f.mDropped.Inc()
			return false
		}
	}
	go func() {
		if _, _, err := f.dump(reason, traceID); err != nil {
			// Dump failures must never affect serving; the dropped
			// counter is the only signal.
			f.mDropped.Inc()
		}
	}()
	return true
}
