package obs

import (
	"runtime"
	"testing"
	"time"
)

func TestRuntimeSampleBounds(t *testing.T) {
	s := take()
	if s.Goroutines < 1 {
		t.Errorf("goroutines = %d", s.Goroutines)
	}
	if s.HeapInuseBytes == 0 || s.HeapAllocBytes == 0 || s.SysBytes == 0 {
		t.Errorf("zero heap figures: %+v", s)
	}
	if s.GOMAXPROCS < 1 || s.GOMAXPROCS != runtime.GOMAXPROCS(0) {
		t.Errorf("gomaxprocs = %d", s.GOMAXPROCS)
	}
	if s.GCPauseP99NS < 0 {
		t.Errorf("gc pause p99 = %d", s.GCPauseP99NS)
	}
	if s.TimeNS <= 0 {
		t.Errorf("time = %d", s.TimeNS)
	}
	// After forcing a GC the pause stats must be populated.
	runtime.GC()
	s2 := take()
	if s2.NumGC == 0 {
		t.Error("NumGC = 0 after runtime.GC()")
	}
}

func TestSamplerOnDemandRateLimit(t *testing.T) {
	rs := NewRuntimeSampler(4, time.Hour)
	a := rs.Sample()
	b := rs.Sample()
	if a.TimeNS != b.TimeNS {
		t.Error("second Sample inside the min interval took a fresh sample")
	}
	if got := len(rs.Samples()); got != 1 {
		t.Errorf("retained %d samples, want 1", got)
	}
}

func TestSamplerRingAndBackground(t *testing.T) {
	rs := NewRuntimeSampler(3, time.Nanosecond)
	for i := 0; i < 5; i++ {
		time.Sleep(time.Millisecond)
		rs.Sample()
	}
	got := rs.Samples()
	if len(got) != 3 {
		t.Fatalf("ring holds %d, want 3", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].TimeNS < got[i-1].TimeNS {
			t.Error("samples not oldest-first")
		}
	}

	// Background sampling fills the ring and Stop halts it.
	bg := NewRuntimeSampler(8, time.Nanosecond)
	bg.Start(time.Millisecond)
	bg.Start(time.Millisecond) // second Start no-ops
	deadline := time.Now().Add(5 * time.Second)
	for len(bg.Samples()) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("background sampler produced no samples")
		}
		time.Sleep(time.Millisecond)
	}
	bg.Stop()
	bg.Stop() // idempotent
	n := len(bg.Samples())
	time.Sleep(10 * time.Millisecond)
	if got := len(bg.Samples()); got != n {
		t.Errorf("sampler kept running after Stop: %d -> %d", n, got)
	}
}
