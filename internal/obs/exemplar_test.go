package obs

import (
	"fmt"
	"testing"
)

// TestExemplarQuantileAgreement pins the contract between Quantile and
// ExemplarNear: the exemplar returned for q must fall in the same
// bucket as the quantile estimate (or a higher one when that bucket has
// no exemplar), so /stats p99 always links to a request that is at
// least as slow as the bucket the estimate came from.
func TestExemplarQuantileAgreement(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", "", []float64{0.01, 0.1, 1, 10})
	// 97 fast, 3 slow: p99 lands in the (0.1, 1] bucket.
	for i := 0; i < 97; i++ {
		h.ObserveExemplar(0.005, fmt.Sprintf("fast-%d", i))
	}
	for i := 0; i < 3; i++ {
		h.ObserveExemplar(0.5, fmt.Sprintf("slow-%d", i))
	}
	q := h.Quantile(0.99)
	ex := h.ExemplarNear(0.99)
	if ex == nil {
		t.Fatal("no exemplar near p99")
	}
	if h.bucketIndex(q) != h.bucketIndex(ex.Value) {
		t.Errorf("quantile %.3f (bucket %d) and exemplar %.3f (bucket %d) disagree",
			q, h.bucketIndex(q), ex.Value, h.bucketIndex(ex.Value))
	}
	if ex.TraceID != "slow-2" {
		t.Errorf("exemplar trace = %q, want the last slow observation", ex.TraceID)
	}
	if ex.TimeNS <= 0 {
		t.Errorf("exemplar time = %d", ex.TimeNS)
	}

	// p50 sits in the first bucket with its own exemplar.
	ex50 := h.ExemplarNear(0.50)
	if ex50 == nil || ex50.Value != 0.005 {
		t.Errorf("p50 exemplar = %+v, want a fast one", ex50)
	}
}

func TestExemplarFallbackAndEdges(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", "", []float64{0.01, 0.1, 1})
	if h.ExemplarNear(0.99) != nil {
		t.Error("empty histogram returned an exemplar")
	}
	// Observations without trace IDs never pin exemplars.
	h.Observe(0.5)
	h.ObserveExemplar(0.5, "")
	if h.ExemplarNear(0.99) != nil {
		t.Error("exemplar pinned without a trace ID")
	}
	// One traced observation in a lower bucket: the p99 bucket (0.1,1]
	// is empty of exemplars, so the search falls back downward.
	h.ObserveExemplar(0.005, "fast")
	if ex := h.ExemplarNear(0.99); ex == nil || ex.TraceID != "fast" {
		t.Errorf("fallback exemplar = %+v", ex)
	}
	// Out-of-range and +Inf-bucket values are handled.
	h.ObserveExemplar(100, "huge")
	if ex := h.ExemplarNear(2.5); ex == nil {
		t.Error("q>1 returned no exemplar")
	}
	if got := len(h.Exemplars()); got != 2 {
		t.Errorf("Exemplars() = %d entries, want 2", got)
	}
}

func TestRegistryValuesAndExemplars(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", "").Add(5)
	reg.GaugeVec("g", "", "k").With("v").Set(7)
	h := reg.HistogramVec("h_seconds", "", []float64{1}, "route").With("r")
	h.ObserveExemplar(0.5, "tr-1")

	vals := reg.Values()
	if vals["c_total"] != 5 {
		t.Errorf("c_total = %v", vals["c_total"])
	}
	if vals[`g{k="v"}`] != 7 {
		t.Errorf(`g{k="v"} = %v`, vals[`g{k="v"}`])
	}
	if vals[`h_seconds_count{route="r"}`] != 1 || vals[`h_seconds_sum{route="r"}`] != 0.5 {
		t.Errorf("histogram series = %v", vals)
	}
	exs := reg.ExemplarsNearP99()
	if ex, ok := exs[`h_seconds{route="r"}`]; !ok || ex.TraceID != "tr-1" {
		t.Errorf("exemplars = %v", exs)
	}
	var nilReg *Registry
	if nilReg.Values() != nil || nilReg.ExemplarsNearP99() != nil {
		t.Error("nil registry not inert")
	}
}
