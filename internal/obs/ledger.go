package obs

import (
	"context"
	"encoding/json"
	"io"
	"sync"
)

// Decision is one recorded pipeline decision — the provenance unit of
// the ledger. Every acquisition or matching outcome that affects the
// unified interface is recorded as one Decision carrying the numeric
// evidence behind it (PMI confidence, classifier posterior, probe
// success fraction, or merge similarity with its LabelSim/DomSim
// breakdown), linked to the request's span tree by trace ID.
type Decision struct {
	// Seq is the emission order within the ledger (0-based).
	Seq int `json:"seq"`
	// TraceID/SpanID link the decision to the span tree of the request
	// (or run) that produced it.
	TraceID string `json:"trace_id,omitempty"`
	SpanID  string `json:"span_id,omitempty"`
	// Component is the deciding component: "surface", "attr-surface",
	// "attr-deep", "outlier", or "matcher".
	Component string `json:"component"`
	// Verdict is the decision: "accept", "reject", "removed" (outlier),
	// "trained", "skip" (classifier untrainable), or "merge".
	Verdict string `json:"verdict"`
	// AttrID is the attribute the decision concerns; for matcher merges
	// it is one endpoint of the strongest supporting pair.
	AttrID string `json:"attr_id,omitempty"`
	// OtherID is the second endpoint of a matcher merge's supporting
	// pair.
	OtherID string `json:"other_id,omitempty"`
	// Label is the attribute's display label.
	Label string `json:"label,omitempty"`
	// Value is the instance value decided on, when the decision is
	// per-value.
	Value string `json:"value,omitempty"`
	// Score is the numeric evidence: PMI confidence (surface),
	// classifier posterior (attr-surface), probe success fraction
	// (attr-deep), or cluster similarity (matcher merge).
	Score float64 `json:"score"`
	// Threshold is the cutoff Score was compared against, when one
	// applies (MinScore, 0.5 posterior, 1/3 probe rule, merge τ).
	Threshold float64 `json:"threshold,omitempty"`
	// LabelSim/DomSim break a matcher merge's similarity into the
	// α·LabelSim + β·DomSim terms of the supporting pair.
	LabelSim float64 `json:"label_sim,omitempty"`
	DomSim   float64 `json:"dom_sim,omitempty"`
	// MergeOrder is the 1-based position of a merge in the clustering
	// sequence.
	MergeOrder int `json:"merge_order,omitempty"`
	// Count carries a batch size (donors borrowed, probes issued), when
	// meaningful.
	Count int `json:"count,omitempty"`
	// Detail carries human-readable context (donor label, thresholds,
	// failure reason).
	Detail string `json:"detail,omitempty"`
}

// Ledger records structured decision events as NDJSON (optional) and in
// an in-memory store indexed by attribute and by trace. All methods are
// safe for concurrent use and nil-safe: a nil *Ledger no-ops, so
// pipeline code guards record sites with a single nil check and the
// disabled path costs nothing (the PR-3 bench gate covers it).
type Ledger struct {
	mu      sync.Mutex
	enc     *json.Encoder
	all     []Decision
	byAttr  map[string][]int
	byTrace map[string][]int

	decisions *CounterVec // component, verdict
}

// NewLedger returns a ledger. If w is non-nil every decision is also
// written to it as one JSON object per line.
func NewLedger(w io.Writer) *Ledger {
	l := &Ledger{byAttr: map[string][]int{}, byTrace: map[string][]int{}}
	if w != nil {
		l.enc = json.NewEncoder(w)
	}
	return l
}

// Instrument registers the decision counter family on r:
//
//	webiq_decisions_total{component,verdict}
//
// and bumps it on every Record. Safe to call on several ledgers against
// one registry (they share the family).
func (l *Ledger) Instrument(r *Registry) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.decisions = r.CounterVec("webiq_decisions_total",
		"Pipeline decisions recorded in the provenance ledger, by component and verdict.",
		"component", "verdict")
	l.mu.Unlock()
}

// Record appends a decision (stamping its Seq) and streams it when an
// NDJSON writer is installed.
func (l *Ledger) Record(d Decision) {
	if l == nil {
		return
	}
	l.mu.Lock()
	d.Seq = len(l.all)
	l.all = append(l.all, d)
	if d.AttrID != "" {
		l.byAttr[d.AttrID] = append(l.byAttr[d.AttrID], d.Seq)
	}
	if d.TraceID != "" {
		l.byTrace[d.TraceID] = append(l.byTrace[d.TraceID], d.Seq)
	}
	ctr := l.decisions
	if l.enc != nil {
		// Best-effort, like span streaming: encode errors never fail
		// the pipeline.
		_ = l.enc.Encode(d)
	}
	l.mu.Unlock()
	ctr.With(d.Component, d.Verdict).Inc()
}

// RecordCtx is Record with the trace/span identity stamped from ctx.
func (l *Ledger) RecordCtx(ctx context.Context, d Decision) {
	if l == nil {
		return
	}
	if d.TraceID == "" {
		if ref, ok := ctx.Value(spanCtxKey{}).(spanRef); ok {
			d.TraceID = ref.traceID
			d.SpanID = ref.spanID
		}
	}
	l.Record(d)
}

// Len returns the number of recorded decisions.
func (l *Ledger) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.all)
}

// Decisions returns a copy of all decisions in emission order.
func (l *Ledger) Decisions() []Decision {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Decision, len(l.all))
	copy(out, l.all)
	return out
}

// ByAttr returns the decisions concerning one attribute, in emission
// order.
func (l *Ledger) ByAttr(attrID string) []Decision {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.pick(l.byAttr[attrID])
}

// ByTrace returns the decisions recorded under one trace, in emission
// order.
func (l *Ledger) ByTrace(traceID string) []Decision {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.pick(l.byTrace[traceID])
}

func (l *Ledger) pick(idx []int) []Decision {
	if len(idx) == 0 {
		return nil
	}
	out := make([]Decision, len(idx))
	for i, j := range idx {
		out[i] = l.all[j]
	}
	return out
}
