package obs

import (
	"fmt"
	"net/http"
	"time"
)

// Handler serves the registry in Prometheus text exposition format —
// mount it at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// HTTPMetrics holds the server-side HTTP instruments; one set is
// shared across routes (the route is a label). A nil *HTTPMetrics
// no-ops, so handlers can be wrapped unconditionally.
type HTTPMetrics struct {
	reg      *Registry
	requests *CounterVec // route, class
	inFlight *Gauge
}

// NewHTTPMetrics registers the HTTP metric families:
//
//	webiq_http_requests_total{route,class}  requests by status class
//	webiq_http_request_seconds{route}       latency histogram per route
//	webiq_http_in_flight                    requests currently served
func NewHTTPMetrics(r *Registry) *HTTPMetrics {
	if r == nil {
		return nil
	}
	return &HTTPMetrics{
		reg:      r,
		requests: r.CounterVec("webiq_http_requests_total", "HTTP requests served, by route and status class.", "route", "class"),
		inFlight: r.Gauge("webiq_http_in_flight", "HTTP requests currently in flight."),
	}
}

// histogramFor returns the per-route latency histogram; Wrap resolves
// it once per route at wiring time, not per request.
func (m *HTTPMetrics) histogramFor(route string) *Histogram {
	return m.reg.HistogramVec("webiq_http_request_seconds",
		"HTTP request latency in seconds, by route.", nil, "route").With(route)
}

// Wrap instruments a handler under the given route label.
func (m *HTTPMetrics) Wrap(route string, next http.Handler) http.Handler {
	if m == nil {
		return next
	}
	hist := m.histogramFor(route)
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		m.inFlight.Inc()
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(sw, req)
		hist.Observe(time.Since(start).Seconds())
		m.requests.With(route, statusClass(sw.code)).Inc()
		m.inFlight.Dec()
	})
}

// WrapFunc is Wrap for http.HandlerFunc.
func (m *HTTPMetrics) WrapFunc(route string, next func(http.ResponseWriter, *http.Request)) http.Handler {
	return m.Wrap(route, http.HandlerFunc(next))
}

// statusWriter captures the response status code.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// statusClass buckets a status code into "1xx".."5xx".
func statusClass(code int) string {
	if code < 100 || code > 599 {
		return "other"
	}
	return fmt.Sprintf("%dxx", code/100)
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct {
	fam *family
}

// HistogramVec registers (or fetches) a labelled histogram family with
// the given bucket bounds (nil means DefSecondsBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefSecondsBuckets
	}
	return &HistogramVec{fam: r.register(name, help, kindHistogram, labels, buckets)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	if len(values) != len(v.fam.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", v.fam.name, len(v.fam.labels), len(values)))
	}
	return v.fam.get(values, func() metric { return newHistogram(v.fam.buckets) }).(*Histogram)
}
