package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Handler serves the registry in Prometheus text exposition format —
// mount it at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// HTTPMetrics holds the server-side HTTP instruments; one set is
// shared across routes (the route is a label). A nil *HTTPMetrics
// no-ops, so handlers can be wrapped unconditionally.
//
// With SetTracer installed, every wrapped request mints a root span
// ("http", labelled with route/path/status) whose trace ID is exposed
// as the X-Trace-ID response header and propagated to the handler via
// the request context — handlers derive child spans with
// Tracer.StartSpan(r.Context(), ...). With SetSlowLog installed,
// requests at or above the threshold emit one NDJSON line carrying the
// trace ID.
type HTTPMetrics struct {
	reg      *Registry
	requests *CounterVec // route, class
	inFlight *Gauge
	tracer   *Tracer

	mu         sync.Mutex
	routeHists map[string]*Histogram

	slowMu        sync.Mutex
	slowEnc       *json.Encoder
	slowThreshold time.Duration
}

// NewHTTPMetrics registers the HTTP metric families:
//
//	webiq_http_requests_total{route,class}  requests by status class
//	webiq_http_request_seconds{route}       latency histogram per route
//	webiq_http_in_flight                    requests currently served
func NewHTTPMetrics(r *Registry) *HTTPMetrics {
	if r == nil {
		return nil
	}
	return &HTTPMetrics{
		reg:        r,
		requests:   r.CounterVec("webiq_http_requests_total", "HTTP requests served, by route and status class.", "route", "class"),
		inFlight:   r.Gauge("webiq_http_in_flight", "HTTP requests currently in flight."),
		routeHists: map[string]*Histogram{},
	}
}

// SetTracer installs the tracer used to mint per-request root spans;
// nil disables request tracing.
func (m *HTTPMetrics) SetTracer(t *Tracer) {
	if m == nil {
		return
	}
	m.tracer = t
}

// SlowRequest is one slow-request NDJSON log line.
type SlowRequest struct {
	Time    string  `json:"time"`
	Route   string  `json:"route"`
	Method  string  `json:"method"`
	Path    string  `json:"path"`
	Status  int     `json:"status"`
	Seconds float64 `json:"seconds"`
	TraceID string  `json:"trace_id,omitempty"`
}

// SetSlowLog logs requests taking at least threshold as one NDJSON
// SlowRequest line each on w. A nil w disables slow logging.
func (m *HTTPMetrics) SetSlowLog(w io.Writer, threshold time.Duration) {
	if m == nil {
		return
	}
	m.slowMu.Lock()
	if w == nil {
		m.slowEnc = nil
	} else {
		m.slowEnc = json.NewEncoder(w)
	}
	m.slowThreshold = threshold
	m.slowMu.Unlock()
}

// histogramFor returns the per-route latency histogram; Wrap resolves
// it once per route at wiring time, not per request.
func (m *HTTPMetrics) histogramFor(route string) *Histogram {
	h := m.reg.HistogramVec("webiq_http_request_seconds",
		"HTTP request latency in seconds, by route.", nil, "route").With(route)
	m.mu.Lock()
	m.routeHists[route] = h
	m.mu.Unlock()
	return h
}

// Wrap instruments a handler under the given route label.
func (m *HTTPMetrics) Wrap(route string, next http.Handler) http.Handler {
	if m == nil {
		return next
	}
	hist := m.histogramFor(route)
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		m.inFlight.Inc()
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		var span *Span
		if m.tracer != nil {
			span = m.tracer.StartRoot("http")
			span.Label("route", route).Label("path", req.URL.Path)
			w.Header().Set("X-Trace-ID", span.TraceID())
			req = req.WithContext(WithSpan(req.Context(), span))
		}
		next.ServeHTTP(sw, req)
		elapsed := time.Since(start)
		traceID := span.TraceID()
		if span != nil {
			span.Label("status", strconv.Itoa(sw.code))
			span.End()
		}
		hist.ObserveExemplar(elapsed.Seconds(), traceID)
		m.requests.With(route, statusClass(sw.code)).Inc()
		m.inFlight.Dec()
		m.logSlow(route, req, sw.code, elapsed, traceID)
	})
}

// logSlow emits the slow-request NDJSON line when the request is at or
// above the configured threshold.
func (m *HTTPMetrics) logSlow(route string, req *http.Request, status int, elapsed time.Duration, traceID string) {
	m.slowMu.Lock()
	defer m.slowMu.Unlock()
	if m.slowEnc == nil || elapsed < m.slowThreshold {
		return
	}
	// Encode errors are swallowed: slow logging is best-effort.
	_ = m.slowEnc.Encode(SlowRequest{
		Time:    time.Now().UTC().Format(time.RFC3339Nano),
		Route:   route,
		Method:  req.Method,
		Path:    req.URL.Path,
		Status:  status,
		Seconds: elapsed.Seconds(),
		TraceID: traceID,
	})
}

// WrapFunc is Wrap for http.HandlerFunc.
func (m *HTTPMetrics) WrapFunc(route string, next func(http.ResponseWriter, *http.Request)) http.Handler {
	return m.Wrap(route, http.HandlerFunc(next))
}

// RouteSummary is a precomputed latency summary for one route, derived
// from the route's fixed-bucket histogram (quantiles are linear
// interpolations within buckets — estimates, not exact order
// statistics).
type RouteSummary struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50_seconds"`
	P95   float64 `json:"p95_seconds"`
	P99   float64 `json:"p99_seconds"`
	// P99TraceID is a trace exemplar from the p99 region: a concrete
	// request (resolvable via /trace/{id}) behind the estimate.
	P99TraceID string `json:"p99_trace_id,omitempty"`
}

// RouteSummaries returns the latency summary of every wrapped route
// that has served at least one request.
func (m *HTTPMetrics) RouteSummaries() map[string]RouteSummary {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]RouteSummary, len(m.routeHists))
	for route, h := range m.routeHists {
		n := h.Count()
		if n == 0 {
			continue
		}
		sum := RouteSummary{
			Count: n,
			P50:   h.Quantile(0.50),
			P95:   h.Quantile(0.95),
			P99:   h.Quantile(0.99),
		}
		if ex := h.ExemplarNear(0.99); ex != nil {
			sum.P99TraceID = ex.TraceID
		}
		out[route] = sum
	}
	return out
}

// RouteP99 returns one route's p99 estimate and observation count (0, 0
// for an unknown route) — the cheap per-request check behind the flight
// recorder's p99-budget trigger.
func (m *HTTPMetrics) RouteP99(route string) (float64, uint64) {
	if m == nil {
		return 0, 0
	}
	m.mu.Lock()
	h := m.routeHists[route]
	m.mu.Unlock()
	if h == nil {
		return 0, 0
	}
	return h.Quantile(0.99), h.Count()
}

// statusWriter captures the response status code.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// statusClass buckets a status code into "1xx".."5xx".
func statusClass(code int) string {
	if code < 100 || code > 599 {
		return "other"
	}
	return fmt.Sprintf("%dxx", code/100)
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct {
	fam *family
}

// HistogramVec registers (or fetches) a labelled histogram family with
// the given bucket bounds (nil means DefSecondsBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefSecondsBuckets
	}
	return &HistogramVec{fam: r.register(name, help, kindHistogram, labels, buckets)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	if len(values) != len(v.fam.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", v.fam.name, len(v.fam.labels), len(values)))
	}
	return v.fam.get(values, func() metric { return newHistogram(v.fam.buckets) }).(*Histogram)
}
