package obs

import (
	"context"
	"sync"
	"testing"
)

func TestStartSpanLinkage(t *testing.T) {
	tr := NewTracer(nil)
	ctx, root := tr.StartSpan(context.Background(), "root")
	if root == nil || root.TraceID() == "" || root.SpanID() == "" {
		t.Fatal("root span missing trace identity")
	}
	traceID, rootSpanID := root.TraceID(), root.SpanID()
	if TraceIDFrom(ctx) != traceID {
		t.Errorf("TraceIDFrom = %q, want %q", TraceIDFrom(ctx), traceID)
	}
	if SpanFrom(ctx) != root {
		t.Error("SpanFrom did not return the active span")
	}

	childCtx, child := tr.StartSpan(ctx, "child")
	if child.TraceID() != traceID {
		t.Errorf("child trace = %q, want %q", child.TraceID(), traceID)
	}
	childSpanID := child.SpanID()
	_, grand := tr.StartSpan(childCtx, "grand")
	grand.End()
	child.End()

	// Contexts capture immutable identity: deriving a child from
	// childCtx after child has Ended (and been pooled) must still link
	// to child's span ID.
	_, late := tr.StartSpan(childCtx, "late")
	late.End()
	root.End()

	recs := tr.TraceRecords(traceID)
	if len(recs) != 4 {
		t.Fatalf("trace records = %d, want 4", len(recs))
	}
	byName := map[string]SpanRecord{}
	for _, r := range recs {
		if r.TraceID != traceID {
			t.Errorf("record %q trace = %q, want %q", r.Name, r.TraceID, traceID)
		}
		byName[r.Name] = r
	}
	if byName["child"].ParentID != rootSpanID {
		t.Errorf("child parent = %q, want %q", byName["child"].ParentID, rootSpanID)
	}
	if byName["grand"].ParentID != childSpanID {
		t.Errorf("grand parent = %q, want %q", byName["grand"].ParentID, childSpanID)
	}
	if byName["late"].ParentID != childSpanID {
		t.Errorf("late parent = %q, want %q (ended-span context reused)", byName["late"].ParentID, childSpanID)
	}

	tree := tr.Tree(traceID)
	if len(tree) != 1 || tree[0].Name != "root" {
		t.Fatalf("tree roots = %+v, want single root", tree)
	}
	if len(tree[0].Children) != 1 || tree[0].Children[0].Name != "child" {
		t.Fatalf("root children = %+v, want [child]", tree[0].Children)
	}
	kid := tree[0].Children[0]
	if len(kid.Children) != 2 || kid.Children[0].Name != "grand" || kid.Children[1].Name != "late" {
		t.Fatalf("child children = %+v, want [grand late] in start order", kid.Children)
	}
}

// TestStartSpanConcurrentLinkage pins the context-propagation paths
// under -race: many goroutines deriving child and grandchild spans from
// one shared root context must produce a consistent tree with unique
// span IDs.
func TestStartSpanConcurrentLinkage(t *testing.T) {
	tr := NewTracer(nil)
	ctx, root := tr.StartSpan(context.Background(), "root")
	traceID, rootSpanID := root.TraceID(), root.SpanID()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				childCtx, child := tr.StartSpan(ctx, "child")
				_, leaf := tr.StartSpan(childCtx, "leaf")
				leaf.End()
				child.End()
			}
		}()
	}
	wg.Wait()
	root.End()

	recs := tr.TraceRecords(traceID)
	if want := 8*50*2 + 1; len(recs) != want {
		t.Fatalf("trace records = %d, want %d", len(recs), want)
	}
	parents := make(map[string]string, len(recs)) // spanID -> parentID
	for _, r := range recs {
		if r.TraceID != traceID {
			t.Fatalf("record %q in trace %q, want %q", r.Name, r.TraceID, traceID)
		}
		if _, dup := parents[r.SpanID]; dup {
			t.Fatalf("duplicate span ID %q", r.SpanID)
		}
		parents[r.SpanID] = r.ParentID
	}
	for _, r := range recs {
		switch r.Name {
		case "child":
			if r.ParentID != rootSpanID {
				t.Fatalf("child parent = %q, want root %q", r.ParentID, rootSpanID)
			}
		case "leaf":
			if pp, ok := parents[r.ParentID]; !ok || pp != rootSpanID {
				t.Fatalf("leaf parent %q is not a child of the root", r.ParentID)
			}
		}
	}
}

func TestStartSpanNilSafety(t *testing.T) {
	var tr *Tracer
	ctx := context.Background()
	gotCtx, sp := tr.StartSpan(ctx, "x")
	if sp != nil {
		t.Error("nil tracer returned a span")
	}
	if gotCtx != ctx {
		t.Error("nil tracer changed the context")
	}
	if tr.StartRoot("x") != nil || tr.StartChild(nil, "x") != nil {
		t.Error("nil tracer minted spans")
	}
	if WithSpan(ctx, nil) != ctx {
		t.Error("WithSpan(nil span) changed the context")
	}
	if TraceIDFrom(ctx) != "" || SpanFrom(ctx) != nil {
		t.Error("span identity on a bare context")
	}
	var nilCtx context.Context
	if TraceIDFrom(nilCtx) != "" || SpanFrom(nilCtx) != nil {
		t.Error("span identity on a nil context")
	}
}

func TestTraceRetentionFIFO(t *testing.T) {
	tr := NewTracer(nil)
	tr.SetTraceRetention(2)
	var ids []string
	for i := 0; i < 3; i++ {
		sp := tr.StartRoot("r")
		ids = append(ids, sp.TraceID())
		sp.End()
	}
	if tr.TraceRecords(ids[0]) != nil || tr.Tree(ids[0]) != nil {
		t.Error("oldest trace not evicted")
	}
	if tr.TraceRecords(ids[1]) == nil || tr.TraceRecords(ids[2]) == nil {
		t.Error("recent traces evicted")
	}
	if len(tr.Records()) != 3 {
		t.Errorf("flat record log = %d, want 3 (eviction must not touch it)", len(tr.Records()))
	}

	// Retention 0 disables the per-trace store entirely.
	tr2 := NewTracer(nil)
	tr2.SetTraceRetention(0)
	sp := tr2.StartRoot("r")
	id := sp.TraceID()
	sp.End()
	if tr2.TraceRecords(id) != nil {
		t.Error("retention 0 still stored the trace")
	}
	if len(tr2.Records()) != 1 {
		t.Error("flat record log lost the span")
	}
}
