package obs

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestHTTPMiddleware(t *testing.T) {
	r := NewRegistry()
	m := NewHTTPMetrics(r)
	h := m.WrapFunc("demo", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("fail") != "" {
			http.Error(w, "nope", http.StatusNotFound)
			return
		}
		w.Write([]byte("ok"))
	})
	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/demo", nil))
		if rec.Code != 200 {
			t.Fatalf("status = %d", rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/demo?fail=1", nil))
	if rec.Code != 404 {
		t.Fatalf("status = %d", rec.Code)
	}

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		`webiq_http_requests_total{route="demo",class="2xx"} 3`,
		`webiq_http_requests_total{route="demo",class="4xx"} 1`,
		`webiq_http_request_seconds_count{route="demo"} 4`,
		"webiq_http_in_flight 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHTTPMiddlewareNil(t *testing.T) {
	var m *HTTPMetrics
	called := false
	h := m.WrapFunc("demo", func(w http.ResponseWriter, req *http.Request) { called = true })
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	if !called {
		t.Fatal("nil middleware must pass through")
	}
}

func TestHTTPMiddlewareTracing(t *testing.T) {
	r := NewRegistry()
	m := NewHTTPMetrics(r)
	tr := NewTracer(nil)
	m.SetTracer(tr)
	var innerTrace string
	h := m.WrapFunc("demo", func(w http.ResponseWriter, req *http.Request) {
		innerTrace = TraceIDFrom(req.Context())
		if req.URL.Query().Get("boom") != "" {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.Write([]byte("ok"))
	})

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/demo", nil))
	traceID := rec.Header().Get("X-Trace-ID")
	if traceID == "" {
		t.Fatal("no X-Trace-ID response header")
	}
	if innerTrace != traceID {
		t.Errorf("handler saw trace %q, header says %q", innerTrace, traceID)
	}
	tree := tr.Tree(traceID)
	if len(tree) != 1 || tree[0].Name != "http" {
		t.Fatalf("trace tree = %+v, want single http root", tree)
	}
	if tree[0].Labels["route"] != "demo" || tree[0].Labels["status"] != "200" {
		t.Errorf("root labels = %v", tree[0].Labels)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/demo?boom=1", nil))
	if rec.Code != 500 {
		t.Fatalf("status = %d", rec.Code)
	}
	tree = tr.Tree(rec.Header().Get("X-Trace-ID"))
	if len(tree) != 1 || tree[0].Labels["status"] != "500" {
		t.Errorf("5xx trace tree = %+v", tree)
	}

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		`webiq_http_requests_total{route="demo",class="2xx"} 1`,
		`webiq_http_requests_total{route="demo",class="5xx"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHTTPMiddlewareSlowLog(t *testing.T) {
	r := NewRegistry()
	m := NewHTTPMetrics(r)
	tr := NewTracer(nil)
	m.SetTracer(tr)
	var sb strings.Builder
	m.SetSlowLog(&sb, 0) // threshold 0: every request logs
	h := m.WrapFunc("demo", func(w http.ResponseWriter, req *http.Request) {
		http.Error(w, "nope", http.StatusNotFound)
	})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/demo/x", nil))

	line := strings.TrimSpace(sb.String())
	var sr SlowRequest
	if err := json.Unmarshal([]byte(line), &sr); err != nil {
		t.Fatalf("slow line not JSON: %v: %q", err, line)
	}
	if sr.Route != "demo" || sr.Method != "GET" || sr.Path != "/demo/x" || sr.Status != 404 {
		t.Errorf("slow line = %+v", sr)
	}
	if sr.Seconds < 0 {
		t.Errorf("seconds = %v", sr.Seconds)
	}
	if sr.TraceID == "" || sr.TraceID != rec.Header().Get("X-Trace-ID") {
		t.Errorf("slow line trace = %q, header = %q", sr.TraceID, rec.Header().Get("X-Trace-ID"))
	}

	// Raising the threshold silences fast requests.
	m.SetSlowLog(&sb, time.Hour)
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/demo/x", nil))
	if got := strings.TrimSpace(sb.String()); got != line {
		t.Errorf("fast request logged under 1h threshold:\n%s", got)
	}
}

func TestRouteSummaries(t *testing.T) {
	r := NewRegistry()
	m := NewHTTPMetrics(r)
	h := m.WrapFunc("demo", func(w http.ResponseWriter, req *http.Request) { w.Write([]byte("ok")) })
	m.WrapFunc("idle", func(w http.ResponseWriter, req *http.Request) {}) // wrapped, never served
	for i := 0; i < 20; i++ {
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/demo", nil))
	}
	sums := m.RouteSummaries()
	s, ok := sums["demo"]
	if !ok || s.Count != 20 {
		t.Fatalf("summaries = %+v, want demo with count 20", sums)
	}
	if s.P50 <= 0 || s.P50 > s.P95 || s.P95 > s.P99 {
		t.Errorf("quantiles not monotone positive: %+v", s)
	}
	if _, ok := sums["idle"]; ok {
		t.Error("route with zero requests should be omitted")
	}
	var nilM *HTTPMetrics
	if nilM.RouteSummaries() != nil {
		t.Error("nil metrics summaries should be nil")
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("quantile_test_seconds", "x", []float64{1, 2, 4})
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	for _, v := range []float64{0.5, 1.5, 1.5, 3} {
		h.Observe(v)
	}
	// Counts: (0,1]=1, (1,2]=2, (2,4]=1; total 4. The median rank 2
	// falls in (1,2] at its midpoint.
	if got := h.Quantile(0.5); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("q50 = %v, want 1.5", got)
	}
	if got := h.Quantile(0.25); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("q25 = %v, want 1.0", got)
	}
	// An observation beyond the last finite bound clamps high quantiles
	// to that bound.
	h.Observe(100)
	if got := h.Quantile(0.99); got != 4 {
		t.Errorf("q99 with +Inf mass = %v, want clamp to 4", got)
	}
}

func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_handler_total", "x").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "test_handler_total 1") {
		t.Errorf("body:\n%s", rec.Body.String())
	}
}
