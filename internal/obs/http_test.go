package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHTTPMiddleware(t *testing.T) {
	r := NewRegistry()
	m := NewHTTPMetrics(r)
	h := m.WrapFunc("demo", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("fail") != "" {
			http.Error(w, "nope", http.StatusNotFound)
			return
		}
		w.Write([]byte("ok"))
	})
	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/demo", nil))
		if rec.Code != 200 {
			t.Fatalf("status = %d", rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/demo?fail=1", nil))
	if rec.Code != 404 {
		t.Fatalf("status = %d", rec.Code)
	}

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		`webiq_http_requests_total{route="demo",class="2xx"} 3`,
		`webiq_http_requests_total{route="demo",class="4xx"} 1`,
		`webiq_http_request_seconds_count{route="demo"} 4`,
		"webiq_http_in_flight 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHTTPMiddlewareNil(t *testing.T) {
	var m *HTTPMetrics
	called := false
	h := m.WrapFunc("demo", func(w http.ResponseWriter, req *http.Request) { called = true })
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	if !called {
		t.Fatal("nil middleware must pass through")
	}
}

func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_handler_total", "x").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "test_handler_total 1") {
		t.Errorf("body:\n%s", rec.Body.String())
	}
}
