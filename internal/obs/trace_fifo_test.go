package obs

import (
	"fmt"
	"sync"
	"testing"
)

// TestTraceStoreFIFOEviction pins the per-trace store's eviction
// contract under concurrent writers (run with -race): the store never
// holds more than the retention limit, the traces that survive are the
// most recently admitted ones, and evicted traces resolve to nil.
func TestTraceStoreFIFOEviction(t *testing.T) {
	const retain = 16
	tr := NewTracer(nil)
	tr.SetTraceRetention(retain)

	const writers, per = 8, 50
	ids := make([][]string, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		ids[w] = make([]string, per)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				root := tr.StartRoot("req")
				ids[w][i] = root.TraceID()
				child := tr.StartChild(root, "work")
				child.End()
				root.End()
				if i%8 == 0 {
					tr.InFlightRoots() // concurrent reads
					tr.TraceRecords(ids[w][i])
				}
			}
		}(w)
	}
	wg.Wait()

	// Count retained traces: exactly the retention cap survives.
	retained := 0
	for w := 0; w < writers; w++ {
		for _, id := range ids[w] {
			if tr.TraceRecords(id) != nil {
				retained++
			}
		}
	}
	if retained != retain {
		t.Errorf("store retains %d traces, want exactly %d", retained, retain)
	}

	// Every writer's FIRST trace (admitted ~400 traces ago) must be
	// evicted, and each writer's LAST trace retained-or-not is fine —
	// but the newest trace overall must survive (FIFO, not random).
	for w := 0; w < writers; w++ {
		if tr.TraceRecords(ids[w][0]) != nil {
			t.Errorf("writer %d's first trace survived FIFO eviction", w)
		}
	}

	// Nothing left in flight once every span has Ended.
	if live := tr.InFlightRoots(); len(live) != 0 {
		t.Errorf("%d in-flight roots after all spans ended: %+v", len(live), live)
	}
}

// TestTraceStoreFIFOOrder pins strict FIFO order single-threaded: with
// retention 3, admitting traces 1..5 keeps exactly 3,4,5.
func TestTraceStoreFIFOOrder(t *testing.T) {
	tr := NewTracer(nil)
	tr.SetTraceRetention(3)
	var ids []string
	for i := 0; i < 5; i++ {
		s := tr.StartRoot(fmt.Sprintf("op%d", i))
		ids = append(ids, s.TraceID())
		s.End()
	}
	for i, id := range ids {
		got := tr.TraceRecords(id)
		if i < 2 && got != nil {
			t.Errorf("trace %d survived, want evicted", i)
		}
		if i >= 2 && got == nil {
			t.Errorf("trace %d evicted, want retained", i)
		}
	}
}

func TestInFlightRootsSnapshot(t *testing.T) {
	tr := NewTracer(nil)
	a := tr.StartRoot("build-a")
	b := tr.StartRoot("build-b")
	tr.StartChild(a, "child") // children never appear as in-flight roots
	live := tr.InFlightRoots()
	if len(live) != 2 {
		t.Fatalf("in-flight roots = %d, want 2", len(live))
	}
	if live[0].StartedAtNS > live[1].StartedAtNS {
		t.Error("roots not oldest-first")
	}
	for _, r := range live {
		if r.TraceID == "" || r.SpanID == "" || r.RunningNS < 0 {
			t.Errorf("bad in-flight root: %+v", r)
		}
	}
	a.End()
	if live := tr.InFlightRoots(); len(live) != 1 || live[0].Name != "build-b" {
		t.Errorf("after End: %+v", live)
	}
	b.End()
}
