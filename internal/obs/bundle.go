package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"time"
)

// BundleSchema is the bundle format version, bumped on breaking changes
// so webiq-flight can refuse files it does not understand.
const BundleSchema = 1

// TraceDump is the reconstructed span tree of one trace included in a
// bundle.
type TraceDump struct {
	TraceID string      `json:"trace_id"`
	Spans   []*SpanNode `json:"spans"`
}

// Bundle is one diagnostic dump: everything needed to explain an
// anomaly after the fact, in a single self-contained JSON file. The
// profiles are raw pprof protobufs (base64 in the JSON encoding);
// webiq-flight -extract writes them back out as .pprof files.
type Bundle struct {
	Schema int `json:"schema"`
	// Time is the dump time (RFC3339Nano, UTC).
	Time string `json:"time"`
	// Reason names the trigger rule (or "manual" for /debug/flight
	// snapshots).
	Reason string `json:"reason"`
	// TriggerTraceID is the trace of the request that fired the trigger,
	// when there was one.
	TriggerTraceID string `json:"trigger_trace_id,omitempty"`
	// WindowSeconds is how far back the wide events reach.
	WindowSeconds float64 `json:"window_seconds"`
	// Identity labels the world being served (snapshot fingerprint,
	// seed, scale, go version).
	Identity map[string]string `json:"identity,omitempty"`
	// WideEvents are the requests completed inside the window, oldest
	// first.
	WideEvents []WideEvent `json:"wide_events"`
	// Runtime is the retained runtime-sample history.
	Runtime []RuntimeSample `json:"runtime,omitempty"`
	// InFlight are the root spans still open at dump time (requests and
	// builds caught mid-flight).
	InFlight []InFlightRoot `json:"in_flight,omitempty"`
	// Traces are span trees for the interesting traces: the trigger's,
	// every in-flight root's, and the error/slow events' in the window.
	Traces []TraceDump `json:"traces,omitempty"`
	// Metrics is the full metric snapshot at dump time; MetricsDelta the
	// change per series since the previous dump (or recorder start).
	Metrics      map[string]float64 `json:"metrics,omitempty"`
	MetricsDelta map[string]float64 `json:"metrics_delta,omitempty"`
	// Exemplars are per-histogram-series p99-region trace exemplars.
	Exemplars map[string]Exemplar `json:"exemplars,omitempty"`
	// CPUProfile / HeapProfile are pprof protobuf payloads (may be
	// empty when capture was disabled or contended).
	CPUProfile  []byte `json:"cpu_profile,omitempty"`
	HeapProfile []byte `json:"heap_profile,omitempty"`
}

// BundleInfo describes one bundle file on disk.
type BundleInfo struct {
	Name    string `json:"name"`
	Size    int64  `json:"size"`
	ModTime string `json:"mod_time"`
}

// Snapshot dumps a bundle immediately (no debounce) and returns it with
// the path it was written to. Reason defaults to "manual".
func (f *FlightRecorder) Snapshot(reason, traceID string) (*Bundle, string, error) {
	if f == nil {
		return nil, "", fmt.Errorf("obs: flight recorder not enabled")
	}
	if reason == "" {
		reason = "manual"
	}
	return f.dump(reason, traceID)
}

// dump collects and atomically writes one bundle.
func (f *FlightRecorder) dump(reason, traceID string) (*Bundle, string, error) {
	if f.opts.Dir == "" {
		return nil, "", fmt.Errorf("obs: flight recorder has no bundle directory")
	}
	now := time.Now()
	b := &Bundle{
		Schema:         BundleSchema,
		Time:           now.UTC().Format(time.RFC3339Nano),
		Reason:         reason,
		TriggerTraceID: traceID,
		WindowSeconds:  f.opts.Window.Seconds(),
		Identity:       f.opts.Identity,
		WideEvents:     f.EventsSince(now.Add(-f.opts.Window).UnixNano()),
		Runtime:        f.opts.Sampler.Samples(),
		InFlight:       f.opts.Tracer.InFlightRoots(),
	}
	if len(b.Runtime) == 0 {
		// No background sampling: still capture one sample so every
		// bundle carries the runtime vitals.
		b.Runtime = []RuntimeSample{take()}
	}

	// Span trees: the trigger's trace, in-flight roots, and up to a
	// handful of error/slow events from the window.
	want := make([]string, 0, 8)
	seen := map[string]bool{}
	add := func(id string) {
		if id != "" && !seen[id] {
			seen[id] = true
			want = append(want, id)
		}
	}
	add(traceID)
	for _, r := range b.InFlight {
		add(r.TraceID)
	}
	const maxEventTraces = 10
	n := 0
	for i := len(b.WideEvents) - 1; i >= 0 && n < maxEventTraces; i-- {
		ev := b.WideEvents[i]
		if ev.Status >= 500 || ev.Trigger != "" {
			add(ev.TraceID)
			n++
		}
	}
	for _, id := range want {
		if tree := f.opts.Tracer.Tree(id); tree != nil {
			b.Traces = append(b.Traces, TraceDump{TraceID: id, Spans: tree})
		}
	}

	// Metrics snapshot + delta against the previous dump.
	cur := f.opts.Registry.Values()
	f.dumpMu.Lock()
	base := f.baseline
	f.baseline = cur
	f.dumpMu.Unlock()
	b.Metrics = cur
	if base != nil {
		delta := map[string]float64{}
		for k, v := range cur {
			if d := v - base[k]; d != 0 {
				delta[k] = d
			}
		}
		b.MetricsDelta = delta
	}
	b.Exemplars = f.opts.Registry.ExemplarsNearP99()

	// Profiles: heap immediately; CPU for the configured window, one at
	// a time process-wide (pprof allows a single CPU profile).
	var heap bytes.Buffer
	if p := pprof.Lookup("heap"); p != nil {
		if err := p.WriteTo(&heap, 0); err == nil {
			b.HeapProfile = heap.Bytes()
		}
	}
	if d := f.opts.CPUProfileDuration; d > 0 && f.cpuBusy.CompareAndSwap(false, true) {
		var cpu bytes.Buffer
		if err := pprof.StartCPUProfile(&cpu); err == nil {
			time.Sleep(d)
			pprof.StopCPUProfile()
			b.CPUProfile = cpu.Bytes()
		}
		f.cpuBusy.Store(false)
	}

	path, err := f.writeBundle(b, now)
	if err != nil {
		return nil, "", err
	}
	f.mBundles.With(reason).Inc()
	f.pruneBundles()
	return b, path, nil
}

// writeBundle writes the bundle to a temp file and renames it into
// place, so a reader never sees a partial dump.
func (f *FlightRecorder) writeBundle(b *Bundle, now time.Time) (string, error) {
	if err := os.MkdirAll(f.opts.Dir, 0o755); err != nil {
		return "", err
	}
	name := fmt.Sprintf("flight-%s-%s.json",
		now.UTC().Format("20060102T150405.000"), sanitizeReason(b.Reason))
	path := filepath.Join(f.opts.Dir, name)
	tmp, err := os.CreateTemp(f.opts.Dir, ".flight-*.tmp")
	if err != nil {
		return "", err
	}
	enc := json.NewEncoder(tmp)
	if err := enc.Encode(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	return path, nil
}

// sanitizeReason maps a trigger reason to a filename-safe slug.
func sanitizeReason(reason string) string {
	var b strings.Builder
	for _, c := range reason {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-':
			b.WriteRune(c)
		case c >= 'A' && c <= 'Z':
			b.WriteRune(c + ('a' - 'A'))
		default:
			b.WriteByte('-')
		}
	}
	if b.Len() == 0 {
		return "bundle"
	}
	return b.String()
}

// Bundles lists the bundle files in the recorder's directory, newest
// first.
func (f *FlightRecorder) Bundles() ([]BundleInfo, error) {
	if f == nil || f.opts.Dir == "" {
		return nil, nil
	}
	entries, err := os.ReadDir(f.opts.Dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []BundleInfo
	for _, e := range entries {
		if e.IsDir() || !strings.HasPrefix(e.Name(), "flight-") || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		out = append(out, BundleInfo{
			Name:    e.Name(),
			Size:    info.Size(),
			ModTime: info.ModTime().UTC().Format(time.RFC3339Nano),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name > out[j].Name })
	return out, nil
}

// BundlePath resolves a bundle name from Bundles to its path, rejecting
// anything that is not a plain bundle filename (no traversal).
func (f *FlightRecorder) BundlePath(name string) (string, error) {
	if f == nil || f.opts.Dir == "" {
		return "", fmt.Errorf("obs: flight recorder not enabled")
	}
	if name == "" || name != filepath.Base(name) ||
		!strings.HasPrefix(name, "flight-") || !strings.HasSuffix(name, ".json") {
		return "", fmt.Errorf("obs: invalid bundle name %q", name)
	}
	return filepath.Join(f.opts.Dir, name), nil
}

// pruneBundles deletes the oldest bundles beyond MaxBundles.
func (f *FlightRecorder) pruneBundles() {
	limit := f.opts.MaxBundles
	if limit <= 0 {
		return
	}
	infos, err := f.Bundles()
	if err != nil || len(infos) <= limit {
		return
	}
	for _, info := range infos[limit:] {
		os.Remove(filepath.Join(f.opts.Dir, info.Name))
	}
}

// ReadBundle loads a bundle file written by dump.
func ReadBundle(path string) (*Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("obs: bundle %s: %v", path, err)
	}
	if b.Schema != BundleSchema {
		return nil, fmt.Errorf("obs: bundle %s has schema %d, this build reads %d", path, b.Schema, BundleSchema)
	}
	return &b, nil
}
