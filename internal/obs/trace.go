package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SpanRecord is one finished span (or instantaneous event) as exported
// to the NDJSON log. Durations are nanoseconds; StartNS is relative to
// the tracer's construction so runs are comparable regardless of wall
// clock.
//
// TraceID/SpanID/ParentID carry the request-scoped trace identity:
// every span started through StartRoot/StartChild/StartSpan belongs to
// exactly one trace, and ParentID links it to the span that was active
// when it started. Spans started with the flat Span method carry no
// identity (all three fields empty), preserving the PR-1 log shape.
type SpanRecord struct {
	// TraceID groups every span of one request (or one CLI run).
	TraceID string `json:"trace_id,omitempty"`
	// SpanID identifies this span within its trace.
	SpanID string `json:"span_id,omitempty"`
	// ParentID is the SpanID of the enclosing span; empty for roots.
	ParentID string `json:"parent_id,omitempty"`
	// Name identifies the operation ("surface", "attr-deep", "match",
	// or an event kind like "borrow-deep").
	Name string `json:"name"`
	// Labels carries low-cardinality span context (attr, label,
	// interface, detail).
	Labels map[string]string `json:"labels,omitempty"`
	// StartNS is the span start, nanoseconds since tracer creation.
	StartNS int64 `json:"start_ns"`
	// WallNS is the real elapsed time; zero for instantaneous events.
	WallNS int64 `json:"wall_ns"`
	// VirtualNS is the simulated time attributed to the span (search
	// engine / source pool virtual clocks), when known.
	VirtualNS int64 `json:"virtual_ns,omitempty"`
	// Queries is the number of substrate queries attributed to the
	// span, when known.
	Queries int `json:"queries,omitempty"`
	// Count carries an event's instance count, when meaningful.
	Count int `json:"count,omitempty"`
}

// DefTraceRetention is how many distinct traces a tracer retains in its
// per-trace store before evicting the oldest (SetTraceRetention
// overrides it).
const DefTraceRetention = 512

// Tracer records spans and events, optionally streaming each finished
// record as one NDJSON line to a writer, and retains the spans of the
// most recent traces for span-tree reconstruction (TraceRecords/Tree).
// All methods are safe for concurrent use and nil-safe, so instrumented
// code can call through a nil *Tracer at the cost of a branch.
type Tracer struct {
	epoch  time.Time
	idBase uint32
	idCtr  atomic.Uint64

	mu         sync.Mutex
	enc        *json.Encoder
	records    []SpanRecord
	traces     map[string][]SpanRecord
	traceOrder []string // FIFO for eviction
	maxTraces  int
	// inflight tracks root spans (trace identity, no parent) that have
	// started but not Ended, keyed by span ID — the flight recorder's
	// "what was live when the anomaly hit" view. Values are immutable
	// snapshots, so reading them races with nothing.
	inflight map[string]InFlightRoot
}

// InFlightRoot is a root span that has started but not yet finished —
// a request or build caught mid-flight by a diagnostic bundle.
type InFlightRoot struct {
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id"`
	Name    string `json:"name"`
	// StartedAtNS is the wall-clock start, nanoseconds since the Unix
	// epoch; RunningNS how long it had been running when snapshotted.
	StartedAtNS int64 `json:"started_at_ns"`
	RunningNS   int64 `json:"running_ns"`
}

// NewTracer returns a tracer. If w is non-nil every finished span is
// written to it as one JSON object per line; records are also retained
// in memory for Records/Totals and, per trace, for TraceRecords/Tree.
func NewTracer(w io.Writer) *Tracer {
	t := &Tracer{
		epoch:     time.Now(),
		traces:    map[string][]SpanRecord{},
		maxTraces: DefTraceRetention,
	}
	t.idBase = uint32(t.epoch.UnixNano())
	if w != nil {
		t.enc = json.NewEncoder(w)
	}
	return t
}

// SetTraceRetention bounds the per-trace store to the n most recent
// traces (older ones are evicted FIFO). n <= 0 disables per-trace
// retention entirely; the flat record log is unaffected.
func (t *Tracer) SetTraceRetention(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.maxTraces = n
	t.mu.Unlock()
}

// newID mints a process-unique hex ID (per-tracer random base plus an
// atomic counter).
func (t *Tracer) newID() string {
	return fmt.Sprintf("%08x%08x", t.idBase, uint32(t.idCtr.Add(1)))
}

// Span is an in-flight operation started by a Tracer. Methods on a
// nil *Span no-op. Spans are pooled: a *Span must not be used after
// End (contexts built with WithSpan stay valid — they capture the
// immutable trace identity, not the live span).
type Span struct {
	tracer  *Tracer
	rec     SpanRecord
	started time.Time

	mu    sync.Mutex
	ended bool
}

var spanPool = sync.Pool{New: func() any { return new(Span) }}

// start initializes a pooled span with the given identity (empty IDs
// for the flat form).
func (t *Tracer) start(name, traceID, spanID, parentID string) *Span {
	now := time.Now()
	s := spanPool.Get().(*Span)
	s.tracer = t
	s.started = now
	s.ended = false
	s.rec = SpanRecord{
		TraceID:  traceID,
		SpanID:   spanID,
		ParentID: parentID,
		Name:     name,
		StartNS:  now.Sub(t.epoch).Nanoseconds(),
	}
	if traceID != "" && parentID == "" {
		t.mu.Lock()
		if t.inflight == nil {
			t.inflight = map[string]InFlightRoot{}
		}
		t.inflight[spanID] = InFlightRoot{
			TraceID:     traceID,
			SpanID:      spanID,
			Name:        name,
			StartedAtNS: now.UnixNano(),
		}
		t.mu.Unlock()
	}
	return s
}

// Span starts a flat span (no trace identity) with the given name —
// the PR-1 form, kept for logs that don't need hierarchy.
func (t *Tracer) Span(name string) *Span {
	if t == nil {
		return nil
	}
	return t.start(name, "", "", "")
}

// StartRoot mints a new trace and starts its root span.
func (t *Tracer) StartRoot(name string) *Span {
	if t == nil {
		return nil
	}
	return t.start(name, t.newID(), t.newID(), "")
}

// StartChild starts a span in the parent's trace, linked to it. A nil
// or identity-less parent yields a fresh root instead, so call sites
// need no special cases.
func (t *Tracer) StartChild(parent *Span, name string) *Span {
	if t == nil {
		return nil
	}
	if parent == nil {
		return t.StartRoot(name)
	}
	return t.startChildOf(parent.TraceID(), parent.SpanID(), name)
}

func (t *Tracer) startChildOf(traceID, parentSpanID, name string) *Span {
	if traceID == "" {
		return t.StartRoot(name)
	}
	return t.start(name, traceID, t.newID(), parentSpanID)
}

// TraceID returns the span's trace ID ("" for flat spans); nil-safe.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.rec.TraceID
}

// SpanID returns the span's ID within its trace; nil-safe.
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.rec.SpanID
}

// Label attaches a key/value to the span and returns it for chaining.
// Empty values are dropped.
func (s *Span) Label(k, v string) *Span {
	if s == nil || v == "" {
		return s
	}
	s.mu.Lock()
	if s.rec.Labels == nil {
		s.rec.Labels = map[string]string{}
	}
	s.rec.Labels[k] = v
	s.mu.Unlock()
	return s
}

// AddVirtual attributes simulated time to the span.
func (s *Span) AddVirtual(d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.rec.VirtualNS += d.Nanoseconds()
	s.mu.Unlock()
}

// AddQueries attributes substrate queries to the span.
func (s *Span) AddQueries(n int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.rec.Queries += n
	s.mu.Unlock()
}

// End finishes the span, hands its record to the tracer, and returns
// the span to the pool. A second End no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.rec.WallNS = time.Since(s.started).Nanoseconds()
	rec := s.rec
	// The record (with its label map) is handed off; the pooled span
	// must not retain a reference.
	s.rec = SpanRecord{}
	tracer := s.tracer
	s.tracer = nil
	s.mu.Unlock()
	tracer.emit(rec)
	spanPool.Put(s)
}

// Event records an instantaneous occurrence (wall duration zero) —
// the span-log form of the acquisition events of webiq's Tracer.
func (t *Tracer) Event(name string, labels map[string]string, count int) {
	if t == nil {
		return
	}
	t.emit(SpanRecord{
		Name:    name,
		Labels:  labels,
		StartNS: time.Since(t.epoch).Nanoseconds(),
		Count:   count,
	})
}

func (t *Tracer) emit(rec SpanRecord) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if rec.TraceID != "" && rec.ParentID == "" {
		delete(t.inflight, rec.SpanID)
	}
	t.records = append(t.records, rec)
	if rec.TraceID != "" && t.maxTraces > 0 && t.traces != nil {
		if _, ok := t.traces[rec.TraceID]; !ok {
			if len(t.traceOrder) >= t.maxTraces {
				delete(t.traces, t.traceOrder[0])
				t.traceOrder = t.traceOrder[1:]
			}
			t.traceOrder = append(t.traceOrder, rec.TraceID)
		}
		t.traces[rec.TraceID] = append(t.traces[rec.TraceID], rec)
	}
	if t.enc != nil {
		// Encode errors are deliberately swallowed: tracing is
		// best-effort and must never fail the pipeline.
		_ = t.enc.Encode(rec)
	}
}

// InFlightRoots snapshots the root spans that have started but not yet
// Ended, oldest first, with RunningNS filled in as of the call.
func (t *Tracer) InFlightRoots() []InFlightRoot {
	if t == nil {
		return nil
	}
	now := time.Now().UnixNano()
	t.mu.Lock()
	out := make([]InFlightRoot, 0, len(t.inflight))
	for _, r := range t.inflight {
		r.RunningNS = now - r.StartedAtNS
		out = append(out, r)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].StartedAtNS < out[j].StartedAtNS })
	return out
}

// Records returns a copy of all finished records in emission order.
func (t *Tracer) Records() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, len(t.records))
	copy(out, t.records)
	return out
}

// TraceRecords returns a copy of the finished spans of one trace, in
// emission order (children before their parents, since a span is
// emitted at End). Returns nil for an unknown or evicted trace.
func (t *Tracer) TraceRecords(traceID string) []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	recs := t.traces[traceID]
	if recs == nil {
		return nil
	}
	out := make([]SpanRecord, len(recs))
	copy(out, recs)
	return out
}

// SpanNode is one span in a reconstructed trace tree.
type SpanNode struct {
	SpanRecord
	Children []*SpanNode `json:"children,omitempty"`
}

// Tree reconstructs the span tree of one trace: roots (spans whose
// parent is absent or empty) in start order, each with its children in
// start order. Returns nil for an unknown trace.
func (t *Tracer) Tree(traceID string) []*SpanNode {
	recs := t.TraceRecords(traceID)
	if recs == nil {
		return nil
	}
	nodes := make(map[string]*SpanNode, len(recs))
	all := make([]*SpanNode, 0, len(recs))
	for _, r := range recs {
		n := &SpanNode{SpanRecord: r}
		all = append(all, n)
		if r.SpanID != "" {
			nodes[r.SpanID] = n
		}
	}
	var roots []*SpanNode
	for _, n := range all {
		if p := nodes[n.ParentID]; n.ParentID != "" && p != nil && p != n {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	byStart := func(ns []*SpanNode) {
		sort.SliceStable(ns, func(i, j int) bool { return ns[i].StartNS < ns[j].StartNS })
	}
	byStart(roots)
	for _, n := range all {
		byStart(n.Children)
	}
	return roots
}

// Totals aggregates the records per span name.
type Totals struct {
	Name    string
	Spans   int
	Wall    time.Duration
	Virtual time.Duration
	Queries int
}

// TotalsByName sums wall/virtual durations and query counts per span
// name, sorted by name — the per-component totals the Figure-8
// overhead report is checked against.
func (t *Tracer) TotalsByName() []Totals {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	byName := map[string]*Totals{}
	for _, r := range t.records {
		tot := byName[r.Name]
		if tot == nil {
			tot = &Totals{Name: r.Name}
			byName[r.Name] = tot
		}
		tot.Spans++
		tot.Wall += time.Duration(r.WallNS)
		tot.Virtual += time.Duration(r.VirtualNS)
		tot.Queries += r.Queries
	}
	t.mu.Unlock()
	out := make([]Totals, 0, len(byName))
	for _, tot := range byName {
		out = append(out, *tot)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
