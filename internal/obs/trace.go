package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// SpanRecord is one finished span (or instantaneous event) as exported
// to the NDJSON log. Durations are nanoseconds; StartNS is relative to
// the tracer's construction so runs are comparable regardless of wall
// clock.
type SpanRecord struct {
	// Name identifies the operation ("surface", "attr-deep", "match",
	// or an event kind like "borrow-deep").
	Name string `json:"name"`
	// Labels carries low-cardinality span context (attr, label,
	// interface, detail).
	Labels map[string]string `json:"labels,omitempty"`
	// StartNS is the span start, nanoseconds since tracer creation.
	StartNS int64 `json:"start_ns"`
	// WallNS is the real elapsed time; zero for instantaneous events.
	WallNS int64 `json:"wall_ns"`
	// VirtualNS is the simulated time attributed to the span (search
	// engine / source pool virtual clocks), when known.
	VirtualNS int64 `json:"virtual_ns,omitempty"`
	// Queries is the number of substrate queries attributed to the
	// span, when known.
	Queries int `json:"queries,omitempty"`
	// Count carries an event's instance count, when meaningful.
	Count int `json:"count,omitempty"`
}

// Tracer records spans and events, optionally streaming each finished
// record as one NDJSON line to a writer. All methods are safe for
// concurrent use and nil-safe, so instrumented code can call through a
// nil *Tracer at the cost of a branch.
type Tracer struct {
	epoch time.Time

	mu      sync.Mutex
	enc     *json.Encoder
	records []SpanRecord
}

// NewTracer returns a tracer. If w is non-nil every finished span is
// written to it as one JSON object per line; records are also retained
// in memory for Records/Totals.
func NewTracer(w io.Writer) *Tracer {
	t := &Tracer{epoch: time.Now()}
	if w != nil {
		t.enc = json.NewEncoder(w)
	}
	return t
}

// Span is an in-flight operation started by Tracer.Span. Methods on a
// nil *Span no-op.
type Span struct {
	tracer  *Tracer
	rec     SpanRecord
	started time.Time

	mu sync.Mutex
}

// Span starts a span with the given name.
func (t *Tracer) Span(name string) *Span {
	if t == nil {
		return nil
	}
	now := time.Now()
	return &Span{
		tracer:  t,
		started: now,
		rec:     SpanRecord{Name: name, StartNS: now.Sub(t.epoch).Nanoseconds()},
	}
}

// Label attaches a key/value to the span and returns it for chaining.
// Empty values are dropped.
func (s *Span) Label(k, v string) *Span {
	if s == nil || v == "" {
		return s
	}
	s.mu.Lock()
	if s.rec.Labels == nil {
		s.rec.Labels = map[string]string{}
	}
	s.rec.Labels[k] = v
	s.mu.Unlock()
	return s
}

// AddVirtual attributes simulated time to the span.
func (s *Span) AddVirtual(d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.rec.VirtualNS += d.Nanoseconds()
	s.mu.Unlock()
}

// AddQueries attributes substrate queries to the span.
func (s *Span) AddQueries(n int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.rec.Queries += n
	s.mu.Unlock()
}

// End finishes the span and hands it to the tracer.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.rec.WallNS = time.Since(s.started).Nanoseconds()
	rec := s.rec
	s.mu.Unlock()
	s.tracer.emit(rec)
}

// Event records an instantaneous occurrence (wall duration zero) —
// the span-log form of the acquisition events of webiq's Tracer.
func (t *Tracer) Event(name string, labels map[string]string, count int) {
	if t == nil {
		return
	}
	t.emit(SpanRecord{
		Name:    name,
		Labels:  labels,
		StartNS: time.Since(t.epoch).Nanoseconds(),
		Count:   count,
	})
}

func (t *Tracer) emit(rec SpanRecord) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.records = append(t.records, rec)
	if t.enc != nil {
		// Encode errors are deliberately swallowed: tracing is
		// best-effort and must never fail the pipeline.
		_ = t.enc.Encode(rec)
	}
}

// Records returns a copy of all finished records in emission order.
func (t *Tracer) Records() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, len(t.records))
	copy(out, t.records)
	return out
}

// Totals aggregates the records per span name.
type Totals struct {
	Name    string
	Spans   int
	Wall    time.Duration
	Virtual time.Duration
	Queries int
}

// TotalsByName sums wall/virtual durations and query counts per span
// name, sorted by name — the per-component totals the Figure-8
// overhead report is checked against.
func (t *Tracer) TotalsByName() []Totals {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	byName := map[string]*Totals{}
	for _, r := range t.records {
		tot := byName[r.Name]
		if tot == nil {
			tot = &Totals{Name: r.Name}
			byName[r.Name] = tot
		}
		tot.Spans++
		tot.Wall += time.Duration(r.WallNS)
		tot.Virtual += time.Duration(r.VirtualNS)
		tot.Queries += r.Queries
	}
	t.mu.Unlock()
	out := make([]Totals, 0, len(byName))
	for _, tot := range byName {
		out = append(out, *tot)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
