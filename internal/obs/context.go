package obs

import "context"

// Context propagation for request-scoped tracing. A context carries the
// identity of its active span (trace ID + span ID), captured immutably
// at WithSpan time: deriving children from a context stays correct even
// after the span itself has Ended and been pooled.

type spanCtxKey struct{}

// spanRef is the immutable identity snapshot stored in contexts.
type spanRef struct {
	traceID string
	spanID  string
	span    *Span
}

// WithSpan returns a context carrying the span's trace identity (and
// the span itself, for SpanFrom). A nil span returns ctx unchanged.
func WithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, spanRef{
		traceID: s.TraceID(),
		spanID:  s.SpanID(),
		span:    s,
	})
}

// SpanFrom returns the span stored in ctx, or nil. The returned span is
// only valid until its End; use TraceIDFrom for identity that outlives
// the span.
func SpanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	ref, _ := ctx.Value(spanCtxKey{}).(spanRef)
	return ref.span
}

// TraceIDFrom returns the trace ID of the span carried by ctx, or "".
func TraceIDFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	ref, _ := ctx.Value(spanCtxKey{}).(spanRef)
	return ref.traceID
}

// StartSpan starts a span as a child of the span carried by ctx (a
// fresh root when ctx carries none) and returns the derived context
// carrying the new span. On a nil tracer it returns ctx unchanged and a
// nil span, so instrumented call sites pay only a branch when tracing
// is off.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	var s *Span
	if ref, ok := ctx.Value(spanCtxKey{}).(spanRef); ok && ref.traceID != "" {
		s = t.startChildOf(ref.traceID, ref.spanID, name)
	} else {
		s = t.StartRoot(name)
	}
	return WithSpan(ctx, s), s
}
