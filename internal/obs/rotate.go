package obs

import (
	"fmt"
	"os"
	"sync"
)

// RotatingFile is a size-capped NDJSON log sink: when a Write would push
// the current file past MaxBytes, the file is rotated (path → path.1 →
// path.2 …) and the oldest beyond Keep is deleted — so a sustained
// stream of slow-request lines can never fill the disk. Writes are
// line-atomic under an internal mutex; a single Write is never split
// across files.
type RotatingFile struct {
	path     string
	maxBytes int64
	keep     int

	mu   sync.Mutex
	f    *os.File
	size int64
}

// DefRotateMaxBytes and DefRotateKeep are the rotation defaults used
// when the caller passes zero: 10 MiB per file, 5 rotated files kept.
const (
	DefRotateMaxBytes = 10 << 20
	DefRotateKeep     = 5
)

// OpenRotatingFile opens (appending) or creates the log at path.
// maxBytes <= 0 takes DefRotateMaxBytes; keep <= 0 takes DefRotateKeep.
func OpenRotatingFile(path string, maxBytes int64, keep int) (*RotatingFile, error) {
	if maxBytes <= 0 {
		maxBytes = DefRotateMaxBytes
	}
	if keep <= 0 {
		keep = DefRotateKeep
	}
	r := &RotatingFile{path: path, maxBytes: maxBytes, keep: keep}
	if err := r.open(); err != nil {
		return nil, err
	}
	return r, nil
}

// open opens the live file for appending and records its size.
func (r *RotatingFile) open() error {
	f, err := os.OpenFile(r.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	r.f = f
	r.size = st.Size()
	return nil
}

// Write implements io.Writer. A write that would exceed the cap rotates
// first, so each file stays at or under MaxBytes (except a single write
// larger than the cap, which lands alone in a fresh file).
func (r *RotatingFile) Write(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.f == nil {
		return 0, fmt.Errorf("obs: rotating file %s is closed", r.path)
	}
	if r.size > 0 && r.size+int64(len(p)) > r.maxBytes {
		if err := r.rotate(); err != nil {
			return 0, err
		}
	}
	n, err := r.f.Write(p)
	r.size += int64(n)
	return n, err
}

// rotate shifts path.i → path.i+1 (dropping the one beyond keep) and
// reopens a fresh live file. Called with the mutex held.
func (r *RotatingFile) rotate() error {
	if err := r.f.Close(); err != nil {
		return err
	}
	r.f = nil
	os.Remove(fmt.Sprintf("%s.%d", r.path, r.keep))
	for i := r.keep - 1; i >= 1; i-- {
		from := fmt.Sprintf("%s.%d", r.path, i)
		if _, err := os.Stat(from); err == nil {
			os.Rename(from, fmt.Sprintf("%s.%d", r.path, i+1))
		}
	}
	if err := os.Rename(r.path, r.path+".1"); err != nil && !os.IsNotExist(err) {
		return err
	}
	return r.open()
}

// Close closes the live file; further Writes fail.
func (r *RotatingFile) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.f == nil {
		return nil
	}
	err := r.f.Close()
	r.f = nil
	return err
}
