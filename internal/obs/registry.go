// Package obs is the observability layer shared by every WebIQ
// subsystem: a dependency-free metrics registry (counters, gauges,
// histograms) with Prometheus text-format exposition, a span-style
// tracer with NDJSON export, and HTTP middleware.
//
// Every instrument is safe for concurrent use and nil-safe: methods on
// a nil *Counter, *Gauge, *Histogram, *CounterVec, *Tracer, or *Span
// are no-ops, so instrumented code pays only a nil-check branch when no
// registry or tracer is installed. Components expose an
// Instrument(*obs.Registry) (or SetObserver) hook; passing nil leaves
// them uninstrumented.
//
// Metric naming follows the Prometheus conventions:
// webiq_<subsystem>_<quantity>_<unit|total>, with low-cardinality
// labels only (component, route, decision, source, class).
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// metricKind is the exposition TYPE of a family.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "counter"
	}
}

// DefSecondsBuckets are the default histogram bucket upper bounds for
// latency-in-seconds metrics, spanning the simulated per-query
// latencies (0.1–0.5 s search, 0.3–1.5 s probes) and real HTTP times.
var DefSecondsBuckets = []float64{0.005, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Registry holds metric families and renders them in Prometheus text
// exposition format. The zero value is not usable; use NewRegistry.
// All methods are safe for concurrent use, and safe on a nil receiver
// (they return nil instruments, whose methods no-op).
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

// family is one named metric with a fixed label set; each distinct
// label-value combination is a series.
type family struct {
	name    string
	help    string
	kind    metricKind
	labels  []string
	buckets []float64 // kindHistogram only

	mu     sync.Mutex
	series map[string]metric
}

type metric interface {
	write(w io.Writer, fam *family, labelValues []string)
}

// seriesKey joins label values with a separator that cannot appear in
// them unescaped (0xff is not valid UTF-8).
func seriesKey(values []string) string { return strings.Join(values, "\xff") }

// splitSeriesKey is the inverse of seriesKey.
func splitSeriesKey(key string) []string { return strings.Split(key, "\xff") }

// register returns the family with the given shape, creating it on
// first use. Re-registering the same name with a different kind or
// label arity panics: it is a programming error that would silently
// corrupt the exposition otherwise.
func (r *Registry) register(name, help string, kind metricKind, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s with %d labels (have %s with %d)",
				name, kind, len(labels), f.kind, len(f.labels)))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, labels: labels,
		buckets: buckets, series: map[string]metric{}}
	r.fams[name] = f
	return f
}

// get returns the series for the label values, creating it with mk on
// first use.
func (f *family) get(values []string, mk func() metric) metric {
	key := seriesKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[key]; ok {
		return m
	}
	m := mk()
	f.series[key] = m
	return m
}

// --- Counter ---

// Counter is a monotonically increasing float64. The zero value is
// ready to use; a nil *Counter no-ops.
type Counter struct {
	bits atomic.Uint64
}

// Add increments the counter by v (v < 0 is ignored).
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	for {
		old := c.bits.Load()
		if c.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

func (c *Counter) write(w io.Writer, fam *family, labelValues []string) {
	fmt.Fprintf(w, "%s%s %s\n", fam.name, renderLabels(fam.labels, labelValues), formatFloat(c.Value()))
}

// Counter registers (or fetches) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	f := r.register(name, help, kindCounter, nil, nil)
	return f.get(nil, func() metric { return &Counter{} }).(*Counter)
}

// CounterVec is a counter family with labels.
type CounterVec struct {
	fam *family
}

// CounterVec registers (or fetches) a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{fam: r.register(name, help, kindCounter, labels, nil)}
}

// With returns the counter for the given label values (one per label
// name, in order).
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	if len(values) != len(v.fam.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", v.fam.name, len(v.fam.labels), len(values)))
	}
	return v.fam.get(values, func() metric { return &Counter{} }).(*Counter)
}

// --- Gauge ---

// Gauge is a float64 that can go up and down. A nil *Gauge no-ops.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by v (which may be negative).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Inc adds one; Dec subtracts one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one from the gauge.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) write(w io.Writer, fam *family, labelValues []string) {
	fmt.Fprintf(w, "%s%s %s\n", fam.name, renderLabels(fam.labels, labelValues), formatFloat(g.Value()))
}

// Gauge registers (or fetches) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.register(name, help, kindGauge, nil, nil)
	return f.get(nil, func() metric { return &Gauge{} }).(*Gauge)
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct {
	fam *family
}

// GaugeVec registers (or fetches) a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{fam: r.register(name, help, kindGauge, labels, nil)}
}

// With returns the gauge for the given label values (one per label
// name, in order).
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	if len(values) != len(v.fam.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", v.fam.name, len(v.fam.labels), len(values)))
	}
	return v.fam.get(values, func() metric { return &Gauge{} }).(*Gauge)
}

// --- Histogram ---

// Histogram counts observations in fixed buckets and tracks their sum.
// A nil *Histogram no-ops.
type Histogram struct {
	upper   []float64 // sorted upper bounds, excluding +Inf
	counts  []atomic.Uint64
	inf     atomic.Uint64
	sumBits atomic.Uint64
	// exemplars holds one trace exemplar per bucket (last slot = +Inf);
	// see exemplar.go.
	exemplars []atomic.Pointer[Exemplar]
}

func newHistogram(buckets []float64) *Histogram {
	return &Histogram{
		upper:     buckets,
		counts:    make([]atomic.Uint64, len(buckets)),
		exemplars: exemplarSlots(len(buckets)),
	}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	placed := false
	for i, ub := range h.upper {
		if v <= ub {
			h.counts[i].Add(1)
			placed = true
			break
		}
	}
	if !placed {
		h.inf.Add(1)
	}
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	n := h.inf.Load()
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-quantile of the observed values by linear
// interpolation within the bucket holding the target rank — the
// standard fixed-bucket estimate, exact only at bucket boundaries.
// Observations above the last finite bound are clamped to it, and q is
// clamped into [0, 1] (q ≤ 0 gives the lower edge of the first occupied
// bucket, q ≥ 1 the upper edge of the last). Returns 0 when the
// histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.Count()
	if total == 0 {
		return 0
	}
	if q < 0 || math.IsNaN(q) {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := uint64(0)
	for i, ub := range h.upper {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if float64(cum)+float64(c) >= rank {
			lb := 0.0
			if i > 0 {
				lb = h.upper[i-1]
			}
			return lb + (ub-lb)*(rank-float64(cum))/float64(c)
		}
		cum += c
	}
	// Target rank falls in the +Inf bucket: clamp to the last finite
	// bound (or the mean when there are no finite buckets).
	if len(h.upper) > 0 {
		return h.upper[len(h.upper)-1]
	}
	return h.Sum() / float64(total)
}

func (h *Histogram) write(w io.Writer, fam *family, labelValues []string) {
	cum := uint64(0)
	for i, ub := range h.upper {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", fam.name,
			renderLabels(append(fam.labels, "le"), append(labelValues, formatFloat(ub))), cum)
	}
	cum += h.inf.Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", fam.name,
		renderLabels(append(fam.labels, "le"), append(labelValues, "+Inf")), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", fam.name, renderLabels(fam.labels, labelValues), formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", fam.name, renderLabels(fam.labels, labelValues), cum)
}

// Histogram registers (or fetches) an unlabelled histogram with the
// given bucket upper bounds (nil means DefSecondsBuckets). Bounds must
// be sorted ascending.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefSecondsBuckets
	}
	f := r.register(name, help, kindHistogram, nil, buckets)
	return f.get(nil, func() metric { return newHistogram(f.buckets) }).(*Histogram)
}

// --- Exposition ---

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4), families and series in
// deterministic sorted order.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.fams[name])
	}
	r.mu.Unlock()

	for _, f := range fams {
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		for _, k := range keys {
			var values []string
			if k != "" || len(f.labels) > 0 {
				values = strings.Split(k, "\xff")
			}
			f.series[k].write(w, f, values)
		}
		f.mu.Unlock()
	}
}

// renderLabels renders a {name="value",...} block, or "" when empty.
func renderLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// formatFloat renders a sample value the way Prometheus expects:
// integers without a decimal point, everything else in shortest form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
