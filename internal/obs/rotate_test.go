package obs

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestRotatingFileRotatesAndCaps(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "slow.ndjson")
	r, err := OpenRotatingFile(path, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	line := bytes.Repeat([]byte("x"), 39)
	line = append(line, '\n') // 40 bytes: 2 lines fit under 100, 3rd rotates
	for i := 0; i < 9; i++ {
		if _, err := r.Write(line); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 { // live + .1 + .2, .3+ deleted
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("files = %v, want live + 2 rotated", names)
	}
	for _, name := range []string{"slow.ndjson", "slow.ndjson.1", "slow.ndjson.2"} {
		st, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("missing %s: %v", name, err)
		}
		if st.Size() > 100 {
			t.Errorf("%s is %d bytes, cap 100", name, st.Size())
		}
		if st.Size()%40 != 0 {
			t.Errorf("%s is %d bytes: a line was split across files", name, st.Size())
		}
	}
}

func TestRotatingFileAppendsOnReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log")
	r, err := OpenRotatingFile(path, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintln(r, "one")
	r.Close()
	r2, err := OpenRotatingFile(path, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintln(r2, "two")
	r2.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "one\ntwo\n" {
		t.Errorf("reopen truncated: %q", data)
	}
	if _, err := r2.Write([]byte("x")); err == nil {
		t.Error("write after Close succeeded")
	}
}

func TestRotatingFileConcurrent(t *testing.T) {
	dir := t.TempDir()
	r, err := OpenRotatingFile(filepath.Join(dir, "c.log"), 512, 3)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				fmt.Fprintf(r, "writer %d line %03d\n", w, i)
			}
		}(w)
	}
	wg.Wait()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}
