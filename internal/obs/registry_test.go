package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	// Scrape concurrently with the increments: must be race-free.
	for i := 0; i < 50; i++ {
		var sb strings.Builder
		r.WritePrometheus(&sb)
	}
	wg.Wait()
	if got := c.Value(); got != 16000 {
		t.Fatalf("counter = %v, want 16000", got)
	}
}

func TestCounterVecSeries(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_requests_total", "requests", "route", "class")
	v.With("stats", "2xx").Add(3)
	v.With("stats", "5xx").Inc()
	v.With("index", "2xx").Inc()
	// Same label values resolve to the same series.
	v.With("stats", "2xx").Inc()

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# HELP test_requests_total requests",
		"# TYPE test_requests_total counter",
		`test_requests_total{route="stats",class="2xx"} 4`,
		`test_requests_total{route="stats",class="5xx"} 1`,
		`test_requests_total{route="index",class="2xx"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_in_flight", "in flight")
	g.Inc()
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 1 {
		t.Fatalf("gauge = %v, want 1", got)
	}
	g.Set(7.5)
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "test_in_flight 7.5") {
		t.Errorf("exposition:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "# TYPE test_in_flight gauge") {
		t.Errorf("missing gauge TYPE line:\n%s", sb.String())
	}
}

func TestHistogramBucketsAndExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "latency", []float64{0.1, 0.5, 1})
	for _, v := range []float64{0.05, 0.3, 0.3, 0.9, 4} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got := h.Sum(); got < 5.54 || got > 5.56 {
		t.Fatalf("sum = %v, want 5.55", got)
	}
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE test_seconds histogram",
		`test_seconds_bucket{le="0.1"} 1`,
		`test_seconds_bucket{le="0.5"} 3`,
		`test_seconds_bucket{le="1"} 4`,
		`test_seconds_bucket{le="+Inf"} 5`,
		"test_seconds_sum 5.55",
		"test_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_conc_seconds", "latency", nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Observe(0.2)
			}
		}()
	}
	for i := 0; i < 20; i++ {
		var sb strings.Builder
		r.WritePrometheus(&sb)
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Fatalf("count = %d, want 4000", h.Count())
	}
	if got := h.Sum(); got < 799.9 || got > 800.1 {
		t.Fatalf("sum = %v, want 800", got)
	}
}

func TestNilSafety(t *testing.T) {
	// Every instrument obtained from a nil registry must no-op rather
	// than panic — this is the "no registry installed" fast path.
	var r *Registry
	r.Counter("x", "").Inc()
	r.Counter("x", "").Add(2)
	r.Gauge("x", "").Set(1)
	r.Gauge("x", "").Dec()
	r.Histogram("x", "", nil).Observe(1)
	r.CounterVec("x", "", "l").With("v").Inc()
	r.HistogramVec("x", "", nil, "l").With("v").Observe(1)
	r.WritePrometheus(&strings.Builder{})
	if r.Counter("x", "").Value() != 0 {
		t.Fatal("nil counter should read 0")
	}
}

func TestReRegisterReturnsSameInstrument(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_same_total", "")
	b := r.Counter("test_same_total", "")
	if a != b {
		t.Fatal("re-registration returned a different counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("counters not shared")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("test_esc_total", "", "v").With("a\"b\\c\nd").Inc()
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `test_esc_total{v="a\"b\\c\nd"} 1`) {
		t.Errorf("escaping wrong:\n%s", sb.String())
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	r := NewRegistry()

	t.Run("empty histogram", func(t *testing.T) {
		h := r.Histogram("test_q_empty_seconds", "", []float64{1, 2, 4})
		for _, q := range []float64{0, 0.5, 1, -1, 2} {
			if got := h.Quantile(q); got != 0 {
				t.Errorf("empty Quantile(%v) = %v, want 0", q, got)
			}
		}
	})

	t.Run("single observation", func(t *testing.T) {
		h := r.Histogram("test_q_single_seconds", "", []float64{1, 2, 4})
		h.Observe(1.5) // lands in (1,2]
		// Every quantile must stay inside the observation's bucket.
		for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
			if got := h.Quantile(q); got < 1 || got > 2 {
				t.Errorf("single-obs Quantile(%v) = %v, outside bucket (1,2]", q, got)
			}
		}
		if got := h.Quantile(1); got != 2 {
			t.Errorf("Quantile(1) = %v, want upper edge 2", got)
		}
		if got := h.Quantile(0); got != 1 {
			t.Errorf("Quantile(0) = %v, want lower edge 1", got)
		}
	})

	t.Run("q zero and one bound the distribution", func(t *testing.T) {
		h := r.Histogram("test_q_bounds_seconds", "", []float64{1, 2, 4})
		for _, v := range []float64{0.5, 1.5, 3, 3.5} {
			h.Observe(v)
		}
		if got := h.Quantile(0); got != 0 {
			t.Errorf("Quantile(0) = %v, want lower edge of first occupied bucket (0)", got)
		}
		if got := h.Quantile(1); got != 4 {
			t.Errorf("Quantile(1) = %v, want upper edge of last occupied bucket (4)", got)
		}
	})

	t.Run("out-of-range q clamps", func(t *testing.T) {
		h := r.Histogram("test_q_clamp_seconds", "", []float64{1, 2, 4})
		for _, v := range []float64{0.5, 1.5, 3} {
			h.Observe(v)
		}
		if got, want := h.Quantile(-0.5), h.Quantile(0); got != want {
			t.Errorf("Quantile(-0.5) = %v, want clamp to Quantile(0) = %v", got, want)
		}
		if got, want := h.Quantile(7), h.Quantile(1); got != want {
			t.Errorf("Quantile(7) = %v, want clamp to Quantile(1) = %v", got, want)
		}
		if got := h.Quantile(-0.5); got < 0 {
			t.Errorf("negative q produced value below the histogram range: %v", got)
		}
		if got, want := h.Quantile(math.NaN()), h.Quantile(0); got != want {
			t.Errorf("Quantile(NaN) = %v, want clamp to Quantile(0) = %v", got, want)
		}
	})

	t.Run("nil histogram", func(t *testing.T) {
		var h *Histogram
		if got := h.Quantile(0.5); got != 0 {
			t.Errorf("nil Quantile = %v, want 0", got)
		}
	})
}
