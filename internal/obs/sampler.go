package obs

import (
	"runtime"
	"sort"
	"sync"
	"time"
)

// RuntimeSample is one observation of the Go runtime: the process-level
// vitals a diagnostic bundle needs to explain a latency spike that was
// not the pipeline's fault (GC pressure, goroutine pileup, heap growth).
type RuntimeSample struct {
	// TimeNS is the sample time, nanoseconds since the Unix epoch.
	TimeNS int64 `json:"time_ns"`
	// Goroutines is runtime.NumGoroutine().
	Goroutines int `json:"goroutines"`
	// HeapInuseBytes / HeapAllocBytes / SysBytes are the MemStats heap
	// figures.
	HeapInuseBytes uint64 `json:"heap_inuse_bytes"`
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	SysBytes       uint64 `json:"sys_bytes"`
	// GCPauseP99NS is the 99th-percentile stop-the-world pause over the
	// runtime's retained pause history (up to the last 256 GCs).
	GCPauseP99NS int64 `json:"gc_pause_p99_ns"`
	// NumGC is the cumulative completed-GC count.
	NumGC uint32 `json:"num_gc"`
	// GOMAXPROCS is the scheduler width.
	GOMAXPROCS int `json:"gomaxprocs"`
}

// DefSamplerCapacity is how many samples a RuntimeSampler retains.
const DefSamplerCapacity = 360

// RuntimeSampler takes RuntimeSamples on demand (rate-limited) or on a
// background ticker, retaining the most recent ones in a ring. On-demand
// use needs no goroutine: Sample refreshes only when the last sample is
// older than the min interval, so mounting it under /stats is free
// between scrapes. All methods are nil-safe.
type RuntimeSampler struct {
	capacity    int
	minInterval time.Duration

	mu      sync.Mutex
	samples []RuntimeSample // ring, oldest-first once full
	start   int             // index of oldest
	count   int
	stop    chan struct{}
}

// NewRuntimeSampler returns a sampler retaining capacity samples
// (DefSamplerCapacity when <= 0), refreshing on demand at most once per
// minInterval (1s when <= 0).
func NewRuntimeSampler(capacity int, minInterval time.Duration) *RuntimeSampler {
	if capacity <= 0 {
		capacity = DefSamplerCapacity
	}
	if minInterval <= 0 {
		minInterval = time.Second
	}
	return &RuntimeSampler{capacity: capacity, minInterval: minInterval}
}

// take reads the runtime into a sample.
func take() RuntimeSample {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return RuntimeSample{
		TimeNS:         time.Now().UnixNano(),
		Goroutines:     runtime.NumGoroutine(),
		HeapInuseBytes: ms.HeapInuse,
		HeapAllocBytes: ms.HeapAlloc,
		SysBytes:       ms.Sys,
		GCPauseP99NS:   pauseP99(&ms),
		NumGC:          ms.NumGC,
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
	}
}

// pauseP99 estimates the p99 stop-the-world pause from the MemStats
// circular pause buffer (up to the 256 most recent GCs).
func pauseP99(ms *runtime.MemStats) int64 {
	n := int(ms.NumGC)
	if n == 0 {
		return 0
	}
	if n > len(ms.PauseNs) {
		n = len(ms.PauseNs)
	}
	pauses := make([]uint64, n)
	for i := 0; i < n; i++ {
		pauses[i] = ms.PauseNs[(int(ms.NumGC)-1-i+len(ms.PauseNs))%len(ms.PauseNs)]
	}
	sort.Slice(pauses, func(i, j int) bool { return pauses[i] < pauses[j] })
	idx := (99*n + 99) / 100
	if idx > 0 {
		idx--
	}
	return int64(pauses[idx])
}

// record appends s to the ring under the lock.
func (rs *RuntimeSampler) record(s RuntimeSample) {
	if rs.count < rs.capacity {
		rs.samples = append(rs.samples, s)
		rs.count++
		return
	}
	rs.samples[rs.start] = s
	rs.start = (rs.start + 1) % rs.capacity
}

// Sample returns a current runtime sample, refreshing the ring when the
// newest retained sample is older than the min interval (so hot /stats
// traffic reads a cached sample instead of hammering ReadMemStats).
func (rs *RuntimeSampler) Sample() RuntimeSample {
	if rs == nil {
		return take()
	}
	rs.mu.Lock()
	if rs.count > 0 {
		last := rs.samples[(rs.start+rs.count-1)%rs.capacity]
		if time.Now().UnixNano()-last.TimeNS < int64(rs.minInterval) {
			rs.mu.Unlock()
			return last
		}
	}
	rs.mu.Unlock()
	// ReadMemStats stops the world briefly; take it outside the lock.
	s := take()
	rs.mu.Lock()
	rs.record(s)
	rs.mu.Unlock()
	return s
}

// Samples returns the retained samples, oldest first.
func (rs *RuntimeSampler) Samples() []RuntimeSample {
	if rs == nil {
		return nil
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	out := make([]RuntimeSample, 0, rs.count)
	for i := 0; i < rs.count; i++ {
		out = append(out, rs.samples[(rs.start+i)%rs.capacity])
	}
	return out
}

// Start begins background sampling every interval until Stop. A second
// Start is a no-op while the first runs.
func (rs *RuntimeSampler) Start(interval time.Duration) {
	if rs == nil || interval <= 0 {
		return
	}
	rs.mu.Lock()
	if rs.stop != nil {
		rs.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	rs.stop = stop
	rs.mu.Unlock()
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				s := take()
				rs.mu.Lock()
				// A Stop while take() ran must win: only record while
				// this goroutine's stop channel is still the live one.
				if rs.stop == stop {
					rs.record(s)
				}
				rs.mu.Unlock()
			}
		}
	}()
}

// Stop halts background sampling; on-demand Sample keeps working.
func (rs *RuntimeSampler) Stop() {
	if rs == nil {
		return
	}
	rs.mu.Lock()
	if rs.stop != nil {
		close(rs.stop)
		rs.stop = nil
	}
	rs.mu.Unlock()
}
