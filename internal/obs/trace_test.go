package obs

import (
	"bufio"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracerNDJSON(t *testing.T) {
	var sb strings.Builder
	tr := NewTracer(&sb)
	sp := tr.Span("surface").Label("attr", "book/if00/a1").Label("label", "Author")
	sp.AddVirtual(250 * time.Millisecond)
	sp.AddQueries(3)
	sp.End()
	tr.Event("borrow-deep", map[string]string{"attr": "book/if00/a2"}, 4)

	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2:\n%s", len(lines), sb.String())
	}
	var rec SpanRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if rec.Name != "surface" || rec.VirtualNS != int64(250*time.Millisecond) || rec.Queries != 3 {
		t.Errorf("span record = %+v", rec)
	}
	if rec.Labels["label"] != "Author" {
		t.Errorf("labels = %v", rec.Labels)
	}
	if rec.WallNS < 0 {
		t.Errorf("wall = %d", rec.WallNS)
	}
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	if rec.Name != "borrow-deep" || rec.Count != 4 || rec.WallNS != 0 {
		t.Errorf("event record = %+v", rec)
	}
}

func TestTracerConcurrent(t *testing.T) {
	// The writer is not concurrency-safe; the tracer must serialize
	// emission internally for the NDJSON lines to stay whole.
	var sb strings.Builder
	tr := NewTracer(&sb)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := tr.Span("work")
				sp.AddVirtual(time.Millisecond)
				sp.AddQueries(1)
				sp.End()
			}
		}(g)
	}
	// Concurrent reads while spans finish.
	for i := 0; i < 20; i++ {
		tr.TotalsByName()
		tr.Records()
	}
	wg.Wait()

	recs := tr.Records()
	if len(recs) != 1600 {
		t.Fatalf("records = %d, want 1600", len(recs))
	}
	// Every NDJSON line must be valid JSON (no interleaving).
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		var rec SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d not JSON: %v: %q", n, err, sc.Text())
		}
		n++
	}
	if n != 1600 {
		t.Fatalf("ndjson lines = %d, want 1600", n)
	}
	tot := tr.TotalsByName()
	if len(tot) != 1 || tot[0].Name != "work" {
		t.Fatalf("totals = %+v", tot)
	}
	if tot[0].Spans != 1600 || tot[0].Queries != 1600 || tot[0].Virtual != 1600*time.Millisecond {
		t.Errorf("totals = %+v", tot[0])
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	sp := tr.Span("x")
	sp.Label("a", "b")
	sp.AddVirtual(time.Second)
	sp.AddQueries(1)
	sp.End()
	tr.Event("e", nil, 0)
	if tr.Records() != nil || tr.TotalsByName() != nil {
		t.Fatal("nil tracer should return nil")
	}
}

func TestTracerCollectOnly(t *testing.T) {
	tr := NewTracer(nil) // no writer: collect in memory only
	tr.Span("a").End()
	if len(tr.Records()) != 1 {
		t.Fatal("record not collected")
	}
}
