package obs

import (
	"sync/atomic"
	"time"
)

// Trace exemplars: each histogram bucket remembers the most recent
// observation that carried a trace ID, so a quantile estimate ("p99 is
// 1.2s") can link to a concrete request ("…for example trace ab12…")
// resolvable via /trace/{id}. Storage is one atomic pointer per bucket —
// no locks on the observe path, constant memory.

// Exemplar is one concrete observation pinned to a bucket.
type Exemplar struct {
	// Value is the observed value (seconds for latency histograms).
	Value float64 `json:"value"`
	// TraceID identifies the request that produced it.
	TraceID string `json:"trace_id"`
	// TimeNS is when it was observed, nanoseconds since the Unix epoch.
	TimeNS int64 `json:"time_ns"`
}

// bucketIndex returns the bucket v falls into (len(upper) = +Inf).
func (h *Histogram) bucketIndex(v float64) int {
	for i, ub := range h.upper {
		if v <= ub {
			return i
		}
	}
	return len(h.upper)
}

// ObserveExemplar records one observation and, when traceID is
// non-empty, pins it as the bucket's exemplar.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if h == nil {
		return
	}
	h.Observe(v)
	if traceID == "" || h.exemplars == nil {
		return
	}
	h.exemplars[h.bucketIndex(v)].Store(&Exemplar{
		Value:   v,
		TraceID: traceID,
		TimeNS:  time.Now().UnixNano(),
	})
}

// ExemplarNear returns an exemplar representative of the q-quantile: the
// exemplar of the bucket holding the quantile's rank, falling back to
// higher then lower buckets when that bucket has none. Returns nil when
// the histogram is empty or no observation ever carried a trace ID.
func (h *Histogram) ExemplarNear(q float64) *Exemplar {
	if h == nil || h.exemplars == nil {
		return nil
	}
	total := h.Count()
	if total == 0 {
		return nil
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	idx := len(h.upper) // +Inf bucket unless a finite bucket holds the rank
	cum := uint64(0)
	for i := range h.upper {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if float64(cum)+float64(c) >= rank {
			idx = i
			break
		}
		cum += c
	}
	// Prefer the quantile's bucket, then the tail above it (an exemplar
	// at least as slow as the estimate), then below.
	for i := idx; i <= len(h.upper); i++ {
		if ex := h.exemplars[i].Load(); ex != nil {
			return ex
		}
	}
	for i := idx - 1; i >= 0; i-- {
		if ex := h.exemplars[i].Load(); ex != nil {
			return ex
		}
	}
	return nil
}

// Exemplars returns every pinned exemplar, lowest bucket first.
func (h *Histogram) Exemplars() []Exemplar {
	if h == nil || h.exemplars == nil {
		return nil
	}
	var out []Exemplar
	for i := range h.exemplars {
		if ex := h.exemplars[i].Load(); ex != nil {
			out = append(out, *ex)
		}
	}
	return out
}

// Values returns the current value of every series, keyed
// name{label="value",…} (counters and gauges) plus name_count and
// name_sum for histograms — the flat map diagnostic bundles snapshot
// and diff. Deterministically ordered iteration is the caller's job
// (it is a map); keys match the Prometheus exposition's series names.
func (r *Registry) Values() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()

	out := map[string]float64{}
	for _, f := range fams {
		f.mu.Lock()
		for key, m := range f.series {
			var values []string
			if key != "" || len(f.labels) > 0 {
				values = splitSeriesKey(key)
			}
			lbl := renderLabels(f.labels, values)
			switch v := m.(type) {
			case *Counter:
				out[f.name+lbl] = v.Value()
			case *Gauge:
				out[f.name+lbl] = v.Value()
			case *Histogram:
				out[f.name+"_count"+lbl] = float64(v.Count())
				out[f.name+"_sum"+lbl] = v.Sum()
			}
		}
		f.mu.Unlock()
	}
	return out
}

// ExemplarsNearP99 returns, for every histogram series that has one, an
// exemplar near the 99th percentile, keyed like Values.
func (r *Registry) ExemplarsNearP99() map[string]Exemplar {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		if f.kind == kindHistogram {
			fams = append(fams, f)
		}
	}
	r.mu.Unlock()

	out := map[string]Exemplar{}
	for _, f := range fams {
		f.mu.Lock()
		for key, m := range f.series {
			h, ok := m.(*Histogram)
			if !ok {
				continue
			}
			ex := h.ExemplarNear(0.99)
			if ex == nil {
				continue
			}
			var values []string
			if key != "" || len(f.labels) > 0 {
				values = splitSeriesKey(key)
			}
			out[f.name+renderLabels(f.labels, values)] = *ex
		}
		f.mu.Unlock()
	}
	return out
}

// exemplarSlots allocates the per-bucket exemplar pointers (buckets plus
// +Inf).
func exemplarSlots(n int) []atomic.Pointer[Exemplar] {
	return make([]atomic.Pointer[Exemplar], n+1)
}
