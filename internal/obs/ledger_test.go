package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestLedgerNDJSONRoundTrip(t *testing.T) {
	var sb strings.Builder
	l := NewLedger(&sb)
	in := []Decision{
		{Component: "surface", Verdict: "accept", AttrID: "book/if00/a1", Label: "Author",
			Value: "Mark Twain", Score: 0.82, Threshold: 0.3, Detail: "PMI validation"},
		{Component: "outlier", Verdict: "removed", AttrID: "book/if00/a1",
			Value: "zzz", Score: 3.1, Threshold: 2.0},
		{Component: "attr-surface", Verdict: "reject", AttrID: "book/if01/a2",
			Value: "Boston", Score: 0.12, Threshold: 0.5},
		{Component: "matcher", Verdict: "merge", AttrID: "a", OtherID: "b", TraceID: "t9",
			Score: 0.9, Threshold: 0.1, LabelSim: 1, DomSim: 0.75, MergeOrder: 1, Count: 2,
			Detail: `strongest pair "Author"~"Writer"`},
	}
	for _, d := range in {
		l.Record(d)
	}

	// Every NDJSON line must decode back to exactly the stored decision
	// (Seq stamped in emission order).
	var back []Decision
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	for sc.Scan() {
		var d Decision
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatalf("line %d not JSON: %v: %q", len(back), err, sc.Text())
		}
		back = append(back, d)
	}
	want := l.Decisions()
	if len(want) != len(in) {
		t.Fatalf("decisions = %d, want %d", len(want), len(in))
	}
	if !reflect.DeepEqual(back, want) {
		t.Errorf("NDJSON round-trip mismatch:\ngot  %+v\nwant %+v", back, want)
	}
	for i, d := range want {
		if d.Seq != i {
			t.Errorf("decision %d has Seq %d", i, d.Seq)
		}
	}
}

func TestLedgerCounterAndIndexes(t *testing.T) {
	r := NewRegistry()
	l := NewLedger(nil)
	l.Instrument(r)
	l.Record(Decision{Component: "surface", Verdict: "accept", AttrID: "a1", TraceID: "t1"})
	l.Record(Decision{Component: "surface", Verdict: "accept", AttrID: "a2", TraceID: "t1"})
	l.Record(Decision{Component: "surface", Verdict: "reject", AttrID: "a1"})
	l.Record(Decision{Component: "matcher", Verdict: "merge", AttrID: "a1", OtherID: "a2", TraceID: "t2"})

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		`webiq_decisions_total{component="surface",verdict="accept"} 2`,
		`webiq_decisions_total{component="surface",verdict="reject"} 1`,
		`webiq_decisions_total{component="matcher",verdict="merge"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	if l.Len() != 4 {
		t.Errorf("Len = %d, want 4", l.Len())
	}
	a1 := l.ByAttr("a1")
	if len(a1) != 3 || a1[0].Seq != 0 || a1[1].Seq != 2 || a1[2].Seq != 3 {
		t.Errorf("ByAttr(a1) = %+v, want seqs 0,2,3", a1)
	}
	t1 := l.ByTrace("t1")
	if len(t1) != 2 || t1[0].Seq != 0 || t1[1].Seq != 1 {
		t.Errorf("ByTrace(t1) = %+v, want seqs 0,1", t1)
	}
	if l.ByAttr("nope") != nil || l.ByTrace("nope") != nil {
		t.Error("unknown index keys should return nil")
	}
}

func TestLedgerRecordCtx(t *testing.T) {
	tr := NewTracer(nil)
	ctx, sp := tr.StartSpan(context.Background(), "root")
	traceID, spanID := sp.TraceID(), sp.SpanID()
	l := NewLedger(nil)
	l.RecordCtx(ctx, Decision{Component: "surface", Verdict: "accept", AttrID: "a"})
	l.RecordCtx(context.Background(), Decision{Component: "surface", Verdict: "reject"})
	// An explicitly-set trace ID wins over the context's.
	l.RecordCtx(ctx, Decision{Component: "matcher", Verdict: "merge", TraceID: "explicit"})
	sp.End()

	ds := l.Decisions()
	if ds[0].TraceID != traceID || ds[0].SpanID != spanID {
		t.Errorf("decision 0 identity = %q/%q, want %q/%q", ds[0].TraceID, ds[0].SpanID, traceID, spanID)
	}
	if ds[1].TraceID != "" || ds[1].SpanID != "" {
		t.Errorf("decision 1 identity = %q/%q, want empty", ds[1].TraceID, ds[1].SpanID)
	}
	if ds[2].TraceID != "explicit" {
		t.Errorf("decision 2 trace = %q, want explicit", ds[2].TraceID)
	}
	if got := l.ByTrace(traceID); len(got) != 1 || got[0].Seq != 0 {
		t.Errorf("ByTrace = %+v, want just decision 0", got)
	}
}

func TestLedgerNilSafe(t *testing.T) {
	var l *Ledger
	l.Record(Decision{Component: "surface", Verdict: "accept"})
	l.RecordCtx(context.Background(), Decision{})
	l.Instrument(NewRegistry())
	if l.Len() != 0 || l.Decisions() != nil || l.ByAttr("x") != nil || l.ByTrace("x") != nil {
		t.Fatal("nil ledger must no-op")
	}
}
