package resilience

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"webiq/internal/obs"
)

// RetryPolicy bounds the retry loop: up to MaxAttempts calls, with
// exponential backoff (BaseDelay doubled per attempt, capped at
// MaxDelay) and full jitter — the actual delay is uniform in
// [0, backoff), the AWS-recommended variant that decorrelates
// synchronized retries across callers.
type RetryPolicy struct {
	MaxAttempts int
	BaseDelay   time.Duration
	MaxDelay    time.Duration
}

// DefaultRetryPolicy is used by the resilient clients when the caller
// leaves the policy zero.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseDelay: 5 * time.Millisecond, MaxDelay: 80 * time.Millisecond}
}

// Retrier runs calls under a RetryPolicy with a deterministic jitter
// stream (seeded rand) and a pluggable clock, so tests replay the exact
// same delays.
type Retrier struct {
	pol   RetryPolicy
	clock Clock

	mu  sync.Mutex
	rng *rand.Rand

	// retries, when set, counts every re-attempt (not first attempts).
	retries *obs.Counter
}

// NewRetrier returns a retrier; a zero policy takes the defaults, a nil
// clock the real one.
func NewRetrier(pol RetryPolicy, clock Clock, seed int64) *Retrier {
	if pol.MaxAttempts <= 0 {
		pol = DefaultRetryPolicy()
	}
	if clock == nil {
		clock = RealClock{}
	}
	return &Retrier{pol: pol, clock: clock, rng: rand.New(rand.NewSource(seed))}
}

// setRetryCounter installs the retry metric (nil-safe).
func (r *Retrier) setRetryCounter(c *obs.Counter) { r.retries = c }

// Do runs fn until it succeeds, fails terminally (non-retryable error),
// exhausts the attempt budget, or the context is done. The returned
// error is fn's last error (or the context's). Cancellation is honored
// at every boundary: before the first attempt, while parked in a
// backoff sleep (both clocks select on ctx.Done, so the return is
// immediate, not delayed until the jittered sleep would have ended),
// and between fn's failure and the next sleep.
func (r *Retrier) Do(ctx context.Context, fn func(ctx context.Context) error) error {
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	var err error
	for attempt := 0; attempt < r.pol.MaxAttempts; attempt++ {
		if attempt > 0 {
			if serr := r.clock.Sleep(ctx, r.delay(attempt-1)); serr != nil {
				return serr
			}
			r.retries.Inc()
		}
		err = fn(ctx)
		if err == nil || !Retryable(err) {
			return err
		}
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
	}
	return err
}

// delay computes the full-jitter backoff for the given completed
// attempt count.
func (r *Retrier) delay(attempt int) time.Duration {
	backoff := r.pol.BaseDelay << uint(attempt)
	if r.pol.MaxDelay > 0 && backoff > r.pol.MaxDelay {
		backoff = r.pol.MaxDelay
	}
	if backoff <= 0 {
		return 0
	}
	r.mu.Lock()
	d := time.Duration(r.rng.Int63n(int64(backoff)))
	r.mu.Unlock()
	return d
}
