package resilience

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"webiq/internal/obs"
	"webiq/internal/surfaceweb"
)

// stubEngine is a deterministic backend for client tests.
type stubEngine struct {
	calls atomic.Int64
	fail  func(call int64) error // consulted per call; nil = never fail
}

func (s *stubEngine) Search(_ context.Context, query string, limit int) ([]surfaceweb.Snippet, error) {
	n := s.calls.Add(1)
	if s.fail != nil {
		if err := s.fail(n); err != nil {
			return nil, err
		}
	}
	out := make([]surfaceweb.Snippet, limit)
	for i := range out {
		out[i] = surfaceweb.Snippet{DocID: i, Text: query}
	}
	return out, nil
}

func (s *stubEngine) NumHits(_ context.Context, query string) (int, error) {
	n := s.calls.Add(1)
	if s.fail != nil {
		if err := s.fail(n); err != nil {
			return 0, err
		}
	}
	return len(query), nil
}

func TestInjectorDeterministic(t *testing.T) {
	prof := Profiles["p30"]
	run := func() []string {
		in := NewInjector(prof, 7)
		var got []string
		for i := 0; i < 50; i++ {
			key := strings.Repeat("q", i%5+1)
			_, err := in.inject(context.Background(), "search", key, prof.Search)
			got = append(got, Reason(err))
		}
		return got
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %s vs %s", i, a[i], b[i])
		}
	}
	// A different seed must produce a different fault sequence.
	in := NewInjector(prof, 8)
	var c []string
	for i := 0; i < 50; i++ {
		key := strings.Repeat("q", i%5+1)
		_, err := in.inject(context.Background(), "search", key, prof.Search)
		c = append(c, Reason(err))
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seed 7 and seed 8 produced identical 50-call fault sequences")
	}
}

func TestInjectorRetrySeesFreshDraws(t *testing.T) {
	// With a 50% error rate, the same key must not fail forever: the
	// per-key attempt counter gives each retry a fresh draw.
	prof := Profile{Search: BackendFaults{ErrorRate: 0.5}}
	in := NewInjector(prof, 1)
	failures := 0
	for i := 0; i < 64; i++ {
		if _, err := in.inject(context.Background(), "search", "same-key", prof.Search); err != nil {
			failures++
		}
	}
	if failures == 0 || failures == 64 {
		t.Fatalf("per-key draws are not independent: %d/64 failures", failures)
	}
}

func TestInjectorRates(t *testing.T) {
	prof := Profile{Search: BackendFaults{ErrorRate: 0.3}}
	in := NewInjector(prof, 42)
	failures := 0
	const n = 2000
	for i := 0; i < n; i++ {
		key := "query-" + strings.Repeat("x", i%17)
		if _, err := in.inject(context.Background(), "search", key, prof.Search); err != nil {
			failures++
		}
	}
	frac := float64(failures) / n
	if frac < 0.25 || frac > 0.35 {
		t.Errorf("30%% error profile injected %.1f%% failures", 100*frac)
	}
}

func TestFaultyEngineTruncatesAndFaultySourceMalforms(t *testing.T) {
	eng := &stubEngine{}
	in := NewInjector(Profile{Search: BackendFaults{TruncateRate: 1}}, 1)
	fe := FaultyEngine(eng, in)
	snips, err := fe.Search(context.Background(), "q", 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(snips) != 4 {
		t.Errorf("TruncateRate=1 returned %d of 8 snippets, want 4", len(snips))
	}

	src := ProbeFunc(func(_, _, _ string) (string, error) { return "<html><body><p>Found 3 results</p></body></html>", nil })
	in2 := NewInjector(Profile{Deep: BackendFaults{MalformedRate: 1}}, 1)
	fs := FaultySource(src, in2)
	page, err := fs.Probe(context.Background(), "if0", "a0", "v")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range MalformedPages {
		if page == m {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("MalformedRate=1 returned a page outside the malformed corpus: %q", page)
	}
}

func TestBurstFaults(t *testing.T) {
	prof := Profile{Search: BackendFaults{BurstEvery: 10, BurstLen: 3}}
	in := NewInjector(prof, 1)
	var pattern []bool
	for i := 0; i < 20; i++ {
		_, err := in.inject(context.Background(), "search", "k", prof.Search)
		pattern = append(pattern, err != nil)
	}
	for i, failed := range pattern {
		want := i%10 < 3
		if failed != want {
			t.Fatalf("call %d: failed=%v, want %v", i, failed, want)
		}
	}
}

func TestRetrierBackoffDeterministicOnFakeClock(t *testing.T) {
	clock := NewFakeClock()
	pol := RetryPolicy{MaxAttempts: 4, BaseDelay: 10 * time.Millisecond, MaxDelay: 100 * time.Millisecond}
	r := NewRetrier(pol, clock, 99)
	attempts := 0
	done := make(chan error, 1)
	go func() {
		done <- r.Do(context.Background(), func(context.Context) error {
			attempts++
			return ErrTransient
		})
	}()
	// Drive the fake clock until the retrier finishes: each failed
	// attempt sleeps at most MaxDelay. Only advance once a sleeper has
	// registered, so no wake-up is lost to a race.
	for i := 0; i < 10000; i++ {
		select {
		case err := <-done:
			if !errors.Is(err, ErrTransient) {
				t.Fatalf("want ErrTransient, got %v", err)
			}
			if attempts != 4 {
				t.Fatalf("want 4 attempts, got %d", attempts)
			}
			return
		default:
			if clock.Sleepers() == 0 {
				time.Sleep(100 * time.Microsecond)
				continue
			}
			clock.Advance(pol.MaxDelay)
		}
	}
	t.Fatal("retrier did not finish under the fake clock")
}

func TestRetrierStopsOnNonRetryable(t *testing.T) {
	r := NewRetrier(RetryPolicy{MaxAttempts: 5, BaseDelay: time.Nanosecond}, nil, 1)
	attempts := 0
	err := r.Do(context.Background(), func(context.Context) error {
		attempts++
		return ErrBreakerOpen
	})
	if !errors.Is(err, ErrBreakerOpen) || attempts != 1 {
		t.Fatalf("non-retryable error retried: attempts=%d err=%v", attempts, err)
	}
}

func TestRetrierHonorsContext(t *testing.T) {
	clock := NewFakeClock()
	r := NewRetrier(RetryPolicy{MaxAttempts: 10, BaseDelay: time.Hour, MaxDelay: time.Hour}, clock, 1)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- r.Do(ctx, func(context.Context) error { return ErrTransient })
	}()
	time.Sleep(10 * time.Millisecond) // let it enter the backoff sleep
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("retrier hung after context cancellation")
	}
}

// TestRetrierCancelMidBackoffReturnsImmediately pins the cancellation
// contract on the FakeClock: with the retrier parked in an hour-long
// jittered backoff sleep, canceling the request context must return
// context.Canceled without the clock ever advancing — no retry fires,
// fn runs exactly once — and the canceled sleeper must deregister from
// the clock instead of leaking in its waiter list.
func TestRetrierCancelMidBackoffReturnsImmediately(t *testing.T) {
	clock := NewFakeClock()
	r := NewRetrier(RetryPolicy{MaxAttempts: 10, BaseDelay: time.Hour, MaxDelay: time.Hour}, clock, 7)
	ctx, cancel := context.WithCancel(context.Background())
	attempts := 0
	done := make(chan error, 1)
	go func() {
		done <- r.Do(ctx, func(context.Context) error {
			attempts++
			return ErrTransient
		})
	}()

	// Wait until the retrier is provably inside the backoff sleep.
	deadline := time.Now().Add(5 * time.Second)
	for clock.Sleepers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("retrier never entered the backoff sleep")
		}
		time.Sleep(100 * time.Microsecond)
	}

	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("cancellation mid-backoff did not return promptly")
	}
	if attempts != 1 {
		t.Fatalf("fn ran %d times, want 1 (no retry after cancellation)", attempts)
	}

	// Leak regression: the canceled sleeper must leave the waiter list
	// even though the clock never advanced past its wake time.
	deadline = time.Now().Add(5 * time.Second)
	for clock.Sleepers() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("canceled sleeper leaked: Sleepers() = %d, want 0", clock.Sleepers())
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestRetrierPreCanceledContextSkipsCall: a context canceled before Do
// is entered must short-circuit without invoking fn at all.
func TestRetrierPreCanceledContextSkipsCall(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := NewRetrier(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Nanosecond}, nil, 1)
	attempts := 0
	err := r.Do(ctx, func(context.Context) error {
		attempts++
		return nil
	})
	if !errors.Is(err, context.Canceled) || attempts != 0 {
		t.Fatalf("pre-canceled Do: attempts=%d err=%v, want 0 attempts + context.Canceled", attempts, err)
	}
}

func TestBreakerOpensAndHalfOpensOnCooldown(t *testing.T) {
	clock := NewFakeClock()
	cfg := BreakerConfig{FailureThreshold: 3, Cooldown: time.Second, HalfOpenProbes: 1}
	b := NewBreaker(cfg, clock)

	// A failure burst trips it open.
	for i := 0; i < 3; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker rejected call %d: %v", i, err)
		}
		b.Record(ErrTransient)
	}
	if b.State() != BreakerOpen {
		t.Fatalf("after %d failures state=%v, want open", cfg.FailureThreshold, b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker admitted a call: %v", err)
	}

	// Cooldown elapses: half-open admits exactly one probe.
	clock.Advance(cfg.Cooldown)
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open breaker rejected the trial call: %v", err)
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state=%v, want half-open", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}

	// Failed probe re-opens; another cooldown + successful probe closes.
	b.Record(ErrTimeout)
	if b.State() != BreakerOpen {
		t.Fatalf("failed half-open probe left state=%v, want open", b.State())
	}
	clock.Advance(cfg.Cooldown)
	if err := b.Allow(); err != nil {
		t.Fatalf("second trial rejected: %v", err)
	}
	b.Record(nil)
	if b.State() != BreakerClosed {
		t.Fatalf("successful probe left state=%v, want closed", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("closed breaker rejected: %v", err)
	}
}

func TestBreakerNeutralOnContextErrors(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: time.Second}, NewFakeClock())
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(context.Canceled)
	if b.State() != BreakerClosed {
		t.Fatalf("context cancellation tripped the breaker: %v", b.State())
	}
}

func TestBulkheadLimitsConcurrency(t *testing.T) {
	b := NewBulkhead(2)
	var inFlight, maxSeen atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := b.Acquire(context.Background()); err != nil {
				t.Error(err)
				return
			}
			n := inFlight.Add(1)
			for {
				m := maxSeen.Load()
				if n <= m || maxSeen.CompareAndSwap(m, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			inFlight.Add(-1)
			b.Release()
		}()
	}
	wg.Wait()
	if maxSeen.Load() > 2 {
		t.Errorf("bulkhead of 2 saw %d concurrent calls", maxSeen.Load())
	}
}

func TestEngineClientRetriesThroughTransientFaults(t *testing.T) {
	eng := &stubEngine{fail: func(call int64) error {
		if call%2 == 1 { // every odd call fails once
			return ErrTransient
		}
		return nil
	}}
	reg := obs.NewRegistry()
	c := NewEngineClient(eng, ClientOptions{
		Retry: RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond},
	})
	c.Instrument(reg)
	snips, err := c.Search(context.Background(), "query", 4)
	if err != nil {
		t.Fatalf("retry did not absorb the transient fault: %v", err)
	}
	if len(snips) != 4 {
		t.Fatalf("got %d snippets, want 4", len(snips))
	}
	n, err := c.NumHits(context.Background(), "abc")
	if err != nil || n != 3 {
		t.Fatalf("NumHits = %d, %v", n, err)
	}
}

func TestSourceClientBreakerFailsFast(t *testing.T) {
	clock := NewFakeClock()
	var backendCalls atomic.Int64
	src := ProbeFunc(func(_, _, _ string) (string, error) {
		backendCalls.Add(1)
		return "", ErrTransient
	})
	c := NewSourceClient(src, ClientOptions{
		Retry:   RetryPolicy{MaxAttempts: 2, BaseDelay: time.Nanosecond, MaxDelay: time.Nanosecond},
		Breaker: BreakerConfig{FailureThreshold: 4, Cooldown: time.Minute, HalfOpenProbes: 1},
		Clock:   clock,
	})
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if _, err := c.Probe(ctx, "if0", "a0", "v"); err == nil {
			t.Fatal("probe unexpectedly succeeded")
		}
	}
	if c.BreakerState() != BreakerOpen {
		t.Fatalf("breaker state = %v, want open", c.BreakerState())
	}
	// Once open, calls fail fast without reaching the backend.
	before := backendCalls.Load()
	if _, err := c.Probe(ctx, "if0", "a0", "v"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("want ErrBreakerOpen, got %v", err)
	}
	if backendCalls.Load() != before {
		t.Error("open breaker still reached the backend")
	}
}

func TestProfileByName(t *testing.T) {
	if _, err := ProfileByName("p30"); err != nil {
		t.Fatal(err)
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestAdaptEngineHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	fe := AdaptEngine(&infallibleStub{})
	if _, err := fe.Search(ctx, "q", 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if _, err := fe.NumHits(ctx, "q"); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

type infallibleStub struct{}

func (infallibleStub) Search(q string, limit int) []surfaceweb.Snippet { return nil }
func (infallibleStub) NumHits(q string) int                           { return 0 }
