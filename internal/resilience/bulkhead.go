package resilience

import "context"

// Bulkhead limits the number of concurrent calls a backend sees —
// isolation against one slow backend absorbing every worker goroutine.
// A nil *Bulkhead admits everything.
type Bulkhead struct {
	slots chan struct{}
}

// NewBulkhead returns a bulkhead admitting up to n concurrent calls
// (n <= 0 returns nil: unlimited).
func NewBulkhead(n int) *Bulkhead {
	if n <= 0 {
		return nil
	}
	return &Bulkhead{slots: make(chan struct{}, n)}
}

// Acquire blocks until a slot is free or ctx is done.
func (b *Bulkhead) Acquire(ctx context.Context) error {
	if b == nil {
		return nil
	}
	select {
	case b.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release frees a slot acquired with Acquire.
func (b *Bulkhead) Release() {
	if b == nil {
		return
	}
	<-b.slots
}

// InUse reports the number of held slots (diagnostics).
func (b *Bulkhead) InUse() int {
	if b == nil {
		return 0
	}
	return len(b.slots)
}
