package resilience

import (
	"sync"
	"time"

	"webiq/internal/obs"
)

// BreakerState is the circuit breaker's state machine position.
type BreakerState int

// Breaker states. The numeric values are exported on the
// webiq_breaker_state gauge: 0 closed (healthy), 1 half-open
// (probing), 2 open (failing fast).
const (
	BreakerClosed BreakerState = iota
	BreakerHalfOpen
	BreakerOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	default:
		return "closed"
	}
}

// BreakerConfig tunes the circuit breaker.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive failures trip the breaker
	// open.
	FailureThreshold int
	// Cooldown is how long the breaker stays open before allowing a
	// half-open probe.
	Cooldown time.Duration
	// HalfOpenProbes is how many concurrent trial calls the half-open
	// state admits.
	HalfOpenProbes int
}

// DefaultBreakerConfig is used by the resilient clients when the caller
// leaves the config zero.
func DefaultBreakerConfig() BreakerConfig {
	return BreakerConfig{FailureThreshold: 5, Cooldown: 250 * time.Millisecond, HalfOpenProbes: 1}
}

// Breaker is a per-backend circuit breaker: closed until
// FailureThreshold consecutive failures, then open (failing fast with
// ErrBreakerOpen) for Cooldown, then half-open admitting
// HalfOpenProbes trial calls — one success closes it, one failure
// re-opens it.
type Breaker struct {
	cfg   BreakerConfig
	clock Clock

	mu           sync.Mutex
	state        BreakerState
	fails        int
	openedAt     time.Time
	halfInFlight int

	// Optional metrics (nil-safe).
	gState       *obs.Gauge
	cTransitions stateCounter
	// onTransition, when set, is invoked on a fresh goroutine for every
	// state change (the flight recorder's breaker-open trigger).
	onTransition func(from, to BreakerState)
}

// stateCounter is the metric slice the breaker bumps on transitions;
// the clients curry their backend label into it.
type stateCounter interface {
	With(state string) *obs.Counter
}

// NewBreaker returns a closed breaker; a zero config takes the
// defaults, a nil clock the real one.
func NewBreaker(cfg BreakerConfig, clock Clock) *Breaker {
	if cfg.FailureThreshold <= 0 {
		cfg = DefaultBreakerConfig()
	}
	if cfg.HalfOpenProbes <= 0 {
		cfg.HalfOpenProbes = 1
	}
	if clock == nil {
		clock = RealClock{}
	}
	return &Breaker{cfg: cfg, clock: clock}
}

// instrument installs the state gauge and transition counter (nil-safe;
// called by the clients).
func (b *Breaker) instrument(g *obs.Gauge, c stateCounter) {
	b.mu.Lock()
	b.gState = g
	b.cTransitions = c
	b.gState.Set(float64(b.state))
	b.mu.Unlock()
}

// SetTransitionHook installs fn to be called on every state change,
// with the old and new state. The hook runs on its own goroutine so it
// may safely call back into the breaker (State etc.); nil-safe, and a
// nil fn clears the hook.
func (b *Breaker) SetTransitionHook(fn func(from, to BreakerState)) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.onTransition = fn
	b.mu.Unlock()
}

// transition moves the breaker to s under b.mu.
func (b *Breaker) transition(s BreakerState) {
	if b.state == s {
		return
	}
	from := b.state
	b.state = s
	b.gState.Set(float64(s))
	if b.cTransitions != nil {
		b.cTransitions.With(s.String()).Inc()
	}
	if fn := b.onTransition; fn != nil {
		// Dispatched off-lock: the hook must not be able to deadlock the
		// breaker, and trigger dumps are slow (pprof capture).
		go fn(from, s)
	}
}

// Allow asks permission for one call. It returns ErrBreakerOpen while
// the breaker is open (cooldown not yet elapsed) or while the half-open
// probe quota is in use. A granted call MUST be reported via Record.
func (b *Breaker) Allow() error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerOpen:
		if b.clock.Now().Sub(b.openedAt) < b.cfg.Cooldown {
			return ErrBreakerOpen
		}
		b.transition(BreakerHalfOpen)
		b.halfInFlight = 1
		return nil
	default: // half-open
		if b.halfInFlight >= b.cfg.HalfOpenProbes {
			return ErrBreakerOpen
		}
		b.halfInFlight++
		return nil
	}
}

// Record reports the outcome of a call admitted by Allow. Context
// cancellation is neutral: it neither trips nor heals the breaker.
func (b *Breaker) Record(err error) {
	if b == nil {
		return
	}
	failed := err != nil && Retryable(err)
	neutral := err != nil && !failed
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		if b.halfInFlight > 0 {
			b.halfInFlight--
		}
		if neutral {
			return
		}
		if failed {
			b.transition(BreakerOpen)
			b.openedAt = b.clock.Now()
			b.fails = b.cfg.FailureThreshold
			return
		}
		b.transition(BreakerClosed)
		b.fails = 0
	case BreakerClosed:
		if neutral {
			return
		}
		if !failed {
			b.fails = 0
			return
		}
		b.fails++
		if b.fails >= b.cfg.FailureThreshold {
			b.transition(BreakerOpen)
			b.openedAt = b.clock.Now()
		}
	}
}

// State returns the current state (refreshing an elapsed cooldown is
// left to the next Allow).
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
