package resilience

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"webiq/internal/surfaceweb"
)

// BackendFaults are the fault rates one backend suffers under a
// Profile. All rates are probabilities in [0, 1], drawn independently
// per call from the injector's deterministic stream.
type BackendFaults struct {
	// ErrorRate is the probability of a transient error (ErrTransient).
	ErrorRate float64
	// TimeoutRate is the probability of a hard timeout (ErrTimeout).
	TimeoutRate float64
	// Latency, when positive, is injected into every call (scaled by a
	// deterministic per-call factor in [1, 2)); LatencyFactor multiplies
	// it. The injector's sleeper honors context cancellation.
	Latency time.Duration
	// LatencyFactor scales Latency (2 means "2x latency" chaos).
	LatencyFactor float64
	// TruncateRate (search only) is the probability the snippet list is
	// cut to its first half — the truncated result pages an AMBER-style
	// extractor must survive.
	TruncateRate float64
	// MalformedRate (probe only) is the probability the response page is
	// replaced by a malformed/empty page from MalformedPages — the messy
	// pages response-analysis heuristics must classify, never choke on.
	MalformedRate float64
	// BurstEvery/BurstLen, when positive, fail BurstLen consecutive
	// calls out of every BurstEvery — a deterministic failure burst that
	// trips circuit breakers.
	BurstEvery, BurstLen int
}

// Profile names a full fault configuration for both backends.
type Profile struct {
	Name   string
	Search BackendFaults
	Deep   BackendFaults
}

// Enabled reports whether the profile injects anything at all.
func (p Profile) Enabled() bool {
	z := BackendFaults{}
	return p.Search != z || p.Deep != z
}

// Profiles are the named fault profiles selectable with the CLIs'
// -faults flag and the chaos suite's tables.
var Profiles = map[string]Profile{
	"p10": {
		Name:   "p10",
		Search: BackendFaults{ErrorRate: 0.10, TimeoutRate: 0.02, TruncateRate: 0.05},
		Deep:   BackendFaults{ErrorRate: 0.10, TimeoutRate: 0.02, MalformedRate: 0.05},
	},
	"p30": {
		Name:   "p30",
		Search: BackendFaults{ErrorRate: 0.30, TimeoutRate: 0.05, TruncateRate: 0.10},
		Deep:   BackendFaults{ErrorRate: 0.30, TimeoutRate: 0.05, MalformedRate: 0.10},
	},
	"latency2x": {
		Name:   "latency2x",
		Search: BackendFaults{Latency: 100 * time.Microsecond, LatencyFactor: 2},
		Deep:   BackendFaults{Latency: 100 * time.Microsecond, LatencyFactor: 2},
	},
	"burst": {
		Name:   "burst",
		Search: BackendFaults{BurstEvery: 40, BurstLen: 12},
		Deep:   BackendFaults{BurstEvery: 40, BurstLen: 12},
	},
	"malformed": {
		Name: "malformed",
		Deep: BackendFaults{MalformedRate: 0.5},
	},
}

// ProfileByName resolves a named profile, listing the known names on
// failure.
func ProfileByName(name string) (Profile, error) {
	if p, ok := Profiles[name]; ok {
		return p, nil
	}
	names := make([]string, 0, len(Profiles))
	for n := range Profiles {
		names = append(names, n)
	}
	sort.Strings(names)
	return Profile{}, fmt.Errorf("resilience: unknown fault profile %q (have %s)", name, strings.Join(names, ", "))
}

// MalformedPages is the corpus of truncated, malformed, and empty
// response pages the injector substitutes for real probe responses.
// It doubles as the seed corpus of the deepweb response-analysis fuzz
// test: every page here must classify (as anything) without panicking.
var MalformedPages = []string{
	"",
	"<html",
	"<html><body><ul><li",
	"<html><body><p>Found",
	"found  results",
	"found 99999999999999999999 results",
	"<<<>>>",
	"\x00\xff\xfe garbage \x80",
	"<html><title></title><body></body></html>",
	"<html><body><p>Found -3 results</p></body></html>",
	strings.Repeat("<li>", 4096),
	"<html><body><p>Internal Server Error</p></body></html>",
}

// Injector draws faults deterministically from a seed: the decision for
// a call depends only on (seed, backend, call key, per-key attempt
// number), never on wall time or goroutine interleaving across distinct
// keys. Retries of one key therefore see fresh draws (a fault is
// transient, not sticky), while two runs with the same seed and the
// same per-key call orders fault identically — the property the chaos
// suite's byte-identical-ledger test asserts.
type Injector struct {
	prof  Profile
	seed  int64
	clock Clock

	mu       sync.Mutex
	attempts map[string]int
	calls    map[string]int
}

// NewInjector returns an injector for the profile, drawing from seed.
func NewInjector(prof Profile, seed int64) *Injector {
	return &Injector{
		prof:     prof,
		seed:     seed,
		clock:    RealClock{},
		attempts: map[string]int{},
		calls:    map[string]int{},
	}
}

// SetClock overrides the clock used for injected latency (tests).
func (in *Injector) SetClock(c Clock) { in.clock = c }

// next claims the attempt number for key and the global call index for
// the backend.
func (in *Injector) next(backend, key string) (attempt, call int) {
	in.mu.Lock()
	attempt = in.attempts[backend+"\xff"+key]
	in.attempts[backend+"\xff"+key] = attempt + 1
	call = in.calls[backend]
	in.calls[backend] = call + 1
	in.mu.Unlock()
	return attempt, call
}

// roll returns a deterministic uniform draw in [0, 1) for one fault
// dimension of one call.
func (in *Injector) roll(backend, key string, attempt int, dim string) float64 {
	h := uint64(14695981039346656037)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
		h ^= 0xff
		h *= 1099511628211
	}
	mixU64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	mix(backend)
	mix(key)
	mix(dim)
	mixU64(uint64(in.seed))
	mixU64(uint64(attempt))
	// FNV alone distributes small integer suffixes poorly; a
	// murmur3-style finalizer makes the top bits uniform.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return float64(h>>11) / float64(1<<53)
}

// inject applies the error-shaped faults (burst, transient, timeout,
// latency) for one call, returning a non-nil error when the call
// should fail. Payload-shaped faults (truncation, malformed pages) are
// applied by the callers on the successful path.
func (in *Injector) inject(ctx context.Context, backend, key string, bf BackendFaults) (attempt int, err error) {
	attempt, call := in.next(backend, key)
	if bf.BurstEvery > 0 && bf.BurstLen > 0 && call%bf.BurstEvery < bf.BurstLen {
		return attempt, &faultErr{sentinel: ErrTransient, backend: backend, key: key}
	}
	if bf.ErrorRate > 0 && in.roll(backend, key, attempt, "err") < bf.ErrorRate {
		return attempt, &faultErr{sentinel: ErrTransient, backend: backend, key: key}
	}
	if bf.TimeoutRate > 0 && in.roll(backend, key, attempt, "timeout") < bf.TimeoutRate {
		return attempt, &faultErr{sentinel: ErrTimeout, backend: backend, key: key}
	}
	if bf.Latency > 0 {
		factor := 1 + in.roll(backend, key, attempt, "lat")
		if bf.LatencyFactor > 1 {
			factor *= bf.LatencyFactor
		}
		d := time.Duration(float64(bf.Latency) * factor)
		if err := in.clock.Sleep(ctx, d); err != nil {
			return attempt, err
		}
	}
	return attempt, ctx.Err()
}

// FaultyEngine wraps a FallibleEngine with the injector's Search
// faults.
func FaultyEngine(inner FallibleEngine, in *Injector) FallibleEngine {
	return &faultyEngine{inner: inner, in: in}
}

type faultyEngine struct {
	inner FallibleEngine
	in    *Injector
}

func (f *faultyEngine) Search(ctx context.Context, query string, limit int) ([]surfaceweb.Snippet, error) {
	bf := f.in.prof.Search
	attempt, err := f.in.inject(ctx, "search", query, bf)
	if err != nil {
		return nil, err
	}
	snips, err := f.inner.Search(ctx, query, limit)
	if err != nil {
		return nil, err
	}
	if bf.TruncateRate > 0 && len(snips) > 1 && f.in.roll("search", query, attempt, "trunc") < bf.TruncateRate {
		snips = snips[:len(snips)/2]
	}
	return snips, nil
}

func (f *faultyEngine) NumHits(ctx context.Context, query string) (int, error) {
	if _, err := f.in.inject(ctx, "hits", query, f.in.prof.Search); err != nil {
		return 0, err
	}
	return f.inner.NumHits(ctx, query)
}

// FaultySource wraps a FallibleSource with the injector's probe faults.
func FaultySource(inner FallibleSource, in *Injector) FallibleSource {
	return &faultySource{inner: inner, in: in}
}

type faultySource struct {
	inner FallibleSource
	in    *Injector
}

func (f *faultySource) Probe(ctx context.Context, interfaceID, attrID, value string) (string, error) {
	bf := f.in.prof.Deep
	key := interfaceID + "|" + attrID + "|" + value
	attempt, err := f.in.inject(ctx, "probe", key, bf)
	if err != nil {
		return "", err
	}
	page, err := f.inner.Probe(ctx, interfaceID, attrID, value)
	if err != nil {
		return "", err
	}
	if bf.MalformedRate > 0 && f.in.roll("probe", key, attempt, "mal") < bf.MalformedRate {
		idx := int(in31(f.in.roll("probe", key, attempt, "pick")) * float64(len(MalformedPages)))
		if idx >= len(MalformedPages) {
			idx = len(MalformedPages) - 1
		}
		return MalformedPages[idx], nil
	}
	return page, nil
}

// in31 clamps a uniform draw defensively into [0, 1).
func in31(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v >= 1 {
		return 0.999999
	}
	return v
}
