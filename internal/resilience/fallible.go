package resilience

import (
	"context"

	"webiq/internal/surfaceweb"
)

// Engine is the infallible search-engine slice the simulation provides
// (mirrors webiq.SearchEngine; *surfaceweb.Engine and the cached engine
// both satisfy it).
type Engine interface {
	Search(query string, limit int) []surfaceweb.Snippet
	NumHits(query string) int
}

// FallibleEngine is the error-aware, context-aware search engine the
// resilient pipeline consumes. Every call honors ctx cancellation and
// may fail with a transient error, a timeout, or a breaker rejection.
type FallibleEngine interface {
	Search(ctx context.Context, query string, limit int) ([]surfaceweb.Snippet, error)
	NumHits(ctx context.Context, query string) (int, error)
}

// FallibleSource is the error-aware, context-aware Deep-Web probing
// interface: one probe against the source backing interfaceID, with the
// attribute set to value. The returned page may be malformed — response
// analysis must classify it, never trust it.
type FallibleSource interface {
	Probe(ctx context.Context, interfaceID, attrID, value string) (string, error)
}

// AdaptEngine lifts an infallible engine into a FallibleEngine that
// never fails (beyond honoring an already-expired context). It is the
// bottom of every chain.
func AdaptEngine(e Engine) FallibleEngine { return &engineAdapter{e} }

type engineAdapter struct{ e Engine }

func (a *engineAdapter) Search(ctx context.Context, query string, limit int) ([]surfaceweb.Snippet, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return a.e.Search(query, limit), nil
}

func (a *engineAdapter) NumHits(ctx context.Context, query string) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return a.e.NumHits(query), nil
}

// ProbeFunc adapts a probing function into a FallibleSource; use it to
// lift a deepweb.Pool:
//
//	resilience.ProbeFunc(func(ifc, attr, value string) (string, error) {
//		src := pool.Source(ifc)
//		if src == nil {
//			return "", resilience.ErrUnknownSource
//		}
//		return src.Probe(attr, value), nil
//	})
type ProbeFunc func(interfaceID, attrID, value string) (string, error)

// Probe implements FallibleSource.
func (f ProbeFunc) Probe(ctx context.Context, interfaceID, attrID, value string) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	return f(interfaceID, attrID, value)
}
