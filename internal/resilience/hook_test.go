package resilience

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestBreakerTransitionHook pins the hook contract: every state change
// reports (from, to) exactly once, asynchronously, and the hook may
// call back into the breaker without deadlocking.
func TestBreakerTransitionHook(t *testing.T) {
	clock := NewFakeClock()
	b := NewBreaker(BreakerConfig{FailureThreshold: 2, Cooldown: time.Second, HalfOpenProbes: 1}, clock)

	type hop struct{ from, to BreakerState }
	var mu sync.Mutex
	var hops []hop
	done := make(chan struct{}, 8)
	b.SetTransitionHook(func(from, to BreakerState) {
		b.State() // re-entrant call must not deadlock
		mu.Lock()
		hops = append(hops, hop{from, to})
		mu.Unlock()
		done <- struct{}{}
	})

	fail := fmt.Errorf("boom: %w", ErrTransient)
	wait := func() {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("transition hook never fired")
		}
	}

	// closed -> open.
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(fail)
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(fail)
	wait()

	// open -> half-open after cooldown, then half-open -> closed.
	clock.Advance(2 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	wait()
	b.Record(nil)
	wait()

	mu.Lock()
	defer mu.Unlock()
	want := []hop{
		{BreakerClosed, BreakerOpen},
		{BreakerOpen, BreakerHalfOpen},
		{BreakerHalfOpen, BreakerClosed},
	}
	if len(hops) != len(want) {
		t.Fatalf("hops = %+v, want %+v", hops, want)
	}
	for i := range want {
		if hops[i] != want[i] {
			t.Errorf("hop %d = %+v, want %+v", i, hops[i], want[i])
		}
	}
}

func TestBreakerTransitionHookNilSafe(t *testing.T) {
	var b *Breaker
	b.SetTransitionHook(func(from, to BreakerState) {})
	live := NewBreaker(BreakerConfig{FailureThreshold: 1}, NewFakeClock())
	live.SetTransitionHook(nil) // clearing an unset hook is fine
	if err := live.Allow(); err != nil {
		t.Fatal(err)
	}
	live.Record(ErrTransient) // transitions with no hook installed
	if got := live.State(); got != BreakerOpen {
		t.Fatalf("state = %v", got)
	}
}
