package resilience

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"webiq/internal/obs"
)

// TestBreakerTransitionHook pins the hook contract: every state change
// reports (from, to) exactly once, asynchronously, and the hook may
// call back into the breaker without deadlocking.
func TestBreakerTransitionHook(t *testing.T) {
	clock := NewFakeClock()
	b := NewBreaker(BreakerConfig{FailureThreshold: 2, Cooldown: time.Second, HalfOpenProbes: 1}, clock)

	type hop struct{ from, to BreakerState }
	var mu sync.Mutex
	var hops []hop
	done := make(chan struct{}, 8)
	b.SetTransitionHook(func(from, to BreakerState) {
		b.State() // re-entrant call must not deadlock
		mu.Lock()
		hops = append(hops, hop{from, to})
		mu.Unlock()
		done <- struct{}{}
	})

	fail := fmt.Errorf("boom: %w", ErrTransient)
	wait := func() {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("transition hook never fired")
		}
	}

	// closed -> open.
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(fail)
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(fail)
	wait()

	// open -> half-open after cooldown, then half-open -> closed.
	clock.Advance(2 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	wait()
	b.Record(nil)
	wait()

	mu.Lock()
	defer mu.Unlock()
	want := []hop{
		{BreakerClosed, BreakerOpen},
		{BreakerOpen, BreakerHalfOpen},
		{BreakerHalfOpen, BreakerClosed},
	}
	if len(hops) != len(want) {
		t.Fatalf("hops = %+v, want %+v", hops, want)
	}
	for i := range want {
		if hops[i] != want[i] {
			t.Errorf("hop %d = %+v, want %+v", i, hops[i], want[i])
		}
	}
}

// TestBreakerTransitionHookConcurrentDispatch races hook installation
// against a storm of state transitions and holds two contracts at
// once: the hook never runs under the breaker lock (every hook calls
// State(), which would deadlock an under-lock dispatch), and no
// transition is dropped — the total hook dispatches must equal the
// transition counter the breaker bumps under its own lock, even while
// SetTransitionHook keeps swapping the installed function mid-storm.
func TestBreakerTransitionHookConcurrentDispatch(t *testing.T) {
	clock := NewFakeClock()
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: time.Nanosecond, HalfOpenProbes: 1}, clock)

	reg := obs.NewRegistry()
	transitions := reg.CounterVec("webiq_breaker_transitions_total",
		"Breaker state transitions, by new state.", "state")
	b.instrument(reg.Gauge("webiq_breaker_state", "Breaker state."), curriedStates{transitions})

	var fired atomic.Int64
	makeHook := func() func(from, to BreakerState) {
		return func(from, to BreakerState) {
			// A hook dispatched under b.mu would deadlock here.
			b.State()
			fired.Add(1)
		}
	}
	b.SetTransitionHook(makeHook())

	stop := make(chan struct{})
	var swappers sync.WaitGroup
	swappers.Add(1)
	go func() {
		defer swappers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				b.SetTransitionHook(makeHook())
			}
		}
	}()

	fail := fmt.Errorf("boom: %w", ErrTransient)
	var drivers sync.WaitGroup
	for g := 0; g < 8; g++ {
		drivers.Add(1)
		go func(g int) {
			defer drivers.Done()
			for i := 0; i < 200; i++ {
				if b.Allow() != nil {
					continue
				}
				// The cooldown is 1ns on a fake clock that never moves,
				// so open->half-open needs a nudge now and then.
				if i%3 == 0 {
					clock.Advance(time.Microsecond)
				}
				if (g+i)%2 == 0 {
					b.Record(fail)
				} else {
					b.Record(nil)
				}
			}
		}(g)
	}
	drivers.Wait()
	close(stop)
	swappers.Wait()

	counted := func() int64 {
		var total float64
		for _, s := range []BreakerState{BreakerClosed, BreakerHalfOpen, BreakerOpen} {
			total += transitions.With(s.String()).Value()
		}
		return int64(total)
	}
	want := counted()
	if want == 0 {
		t.Fatal("the storm produced no transitions; the test drove nothing")
	}
	// Hook goroutines are asynchronous; give every dispatched one time
	// to land before comparing.
	deadline := time.Now().Add(5 * time.Second)
	for fired.Load() != want {
		if time.Now().After(deadline) {
			t.Fatalf("hook fired %d times, breaker counted %d transitions", fired.Load(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// curriedStates adapts a CounterVec to the breaker's stateCounter the
// same way the resilient clients do when currying their backend label.
type curriedStates struct{ vec *obs.CounterVec }

func (c curriedStates) With(state string) *obs.Counter { return c.vec.With(state) }

func TestBreakerTransitionHookNilSafe(t *testing.T) {
	var b *Breaker
	b.SetTransitionHook(func(from, to BreakerState) {})
	live := NewBreaker(BreakerConfig{FailureThreshold: 1}, NewFakeClock())
	live.SetTransitionHook(nil) // clearing an unset hook is fine
	if err := live.Allow(); err != nil {
		t.Fatal(err)
	}
	live.Record(ErrTransient) // transitions with no hook installed
	if got := live.State(); got != BreakerOpen {
		t.Fatalf("state = %v", got)
	}
}
