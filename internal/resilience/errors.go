// Package resilience makes the acquisition substrates fallible — and
// survivable. WebIQ acquires instances from remote, unreliable systems
// (a Web search engine, live Deep-Web sources), which the simulation
// models as infallible in-memory calls. This package restores the
// failure modes the real system would face and the machinery a serving
// stack needs to absorb them:
//
//   - FallibleEngine / FallibleSource: error-aware, context-aware
//     interfaces over the search engine and the Deep-Web sources;
//   - Injector: a deterministic, seed-driven fault injector producing
//     transient errors, hard timeouts, injected latency, truncated
//     snippet lists, and malformed/empty probe response pages from a
//     named Profile;
//   - Retrier: bounded retries with exponential backoff and full
//     jitter, on a pluggable Clock so tests are deterministic and
//     instant;
//   - Breaker: a per-backend circuit breaker (closed / open /
//     half-open with cooldown);
//   - Bulkhead: a concurrency-limiting semaphore;
//   - EngineClient / SourceClient: the resilient clients layering
//     bulkhead -> retry -> breaker -> backend, with retry/breaker
//     metrics.
//
// With no injector and no client installed the pipeline never sees
// this package: the webiq components keep calling the infallible
// substrates directly, so experiment outputs are byte-identical.
package resilience

import (
	"context"
	"errors"
	"fmt"
)

// Error taxonomy. Transient errors and timeouts are retryable; an open
// breaker and context cancellation are not (retrying them only burns
// the caller's deadline).
var (
	// ErrTransient is a momentary backend failure (the HTTP 5xx / reset
	// connection of the simulation). Retryable.
	ErrTransient = errors.New("resilience: transient backend error")
	// ErrTimeout is a hard per-call timeout: the backend did not answer
	// within its deadline. Retryable.
	ErrTimeout = errors.New("resilience: backend timeout")
	// ErrBreakerOpen is returned without touching the backend while a
	// circuit breaker is open. Not retryable: the breaker exists to stop
	// hammering a failing backend.
	ErrBreakerOpen = errors.New("resilience: circuit breaker open")
	// ErrUnknownSource is returned when a probe names a source the pool
	// does not back. Not retryable.
	ErrUnknownSource = errors.New("resilience: unknown deep-web source")
)

// Retryable reports whether err is worth retrying: transient errors and
// timeouts are; breaker rejections, context cancellation, and unknown
// sources are not.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrTransient) || errors.Is(err, ErrTimeout) {
		return true
	}
	return false
}

// Reason maps an error to a low-cardinality label for metrics and
// degradation records.
func Reason(err error) string {
	switch {
	case err == nil:
		return "none"
	case errors.Is(err, ErrTransient):
		return "transient"
	case errors.Is(err, ErrTimeout):
		return "timeout"
	case errors.Is(err, ErrBreakerOpen):
		return "breaker-open"
	case errors.Is(err, ErrUnknownSource):
		return "unknown-source"
	case errors.Is(err, context.Canceled):
		return "canceled"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	default:
		return "other"
	}
}

// faultErr wraps a sentinel with call context while keeping errors.Is
// working against the sentinel.
type faultErr struct {
	sentinel error
	backend  string
	key      string
}

func (e *faultErr) Error() string {
	return fmt.Sprintf("%v (backend %s, key %q)", e.sentinel, e.backend, e.key)
}

func (e *faultErr) Unwrap() error { return e.sentinel }
