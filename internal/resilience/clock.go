package resilience

import (
	"context"
	"sync"
	"time"
)

// Clock abstracts time for the retry and breaker layers so their
// behavior is unit-testable without wall-clock sleeps: backoff delays
// and breaker cooldowns advance on a FakeClock exactly as the test
// dictates.
type Clock interface {
	Now() time.Time
	// Sleep blocks for d or until ctx is done, returning ctx's error in
	// the latter case.
	Sleep(ctx context.Context, d time.Duration) error
}

// RealClock is the wall clock.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (RealClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// FakeClock is a manually advanced clock for tests. Sleepers block
// until Advance moves the clock past their wake time (or their context
// is done).
type FakeClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*fakeWaiter
}

type fakeWaiter struct {
	at time.Time
	ch chan struct{}
}

// NewFakeClock returns a FakeClock starting at a fixed, arbitrary
// instant.
func NewFakeClock() *FakeClock {
	return &FakeClock{now: time.Unix(1_000_000, 0)}
}

// Now implements Clock.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep implements Clock: it blocks until Advance passes d or ctx is
// done.
func (c *FakeClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	c.mu.Lock()
	w := &fakeWaiter{at: c.now.Add(d), ch: make(chan struct{})}
	c.waiters = append(c.waiters, w)
	c.mu.Unlock()
	select {
	case <-w.ch:
		return nil
	case <-ctx.Done():
		// Deregister, or the abandoned waiter would sit in c.waiters
		// until an Advance passes its deadline — inflating Sleepers()
		// and growing the slice for the clock's whole lifetime.
		c.remove(w)
		return ctx.Err()
	}
}

// remove drops a canceled waiter; a no-op if Advance already woke it.
func (c *FakeClock) remove(w *fakeWaiter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, x := range c.waiters {
		if x == w {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			return
		}
	}
}

// Sleepers reports how many goroutines are currently blocked in Sleep —
// tests use it to know when Advance will actually wake someone.
func (c *FakeClock) Sleepers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.waiters)
}

// Advance moves the clock forward by d and wakes every sleeper whose
// deadline has passed.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	var keep []*fakeWaiter
	for _, w := range c.waiters {
		if !w.at.After(c.now) {
			close(w.ch)
		} else {
			keep = append(keep, w)
		}
	}
	c.waiters = keep
	c.mu.Unlock()
}
