package resilience

import (
	"context"

	"webiq/internal/obs"
	"webiq/internal/surfaceweb"
)

// ClientOptions tune a resilient client. Zero values take the layer
// defaults; Clock nil means the wall clock.
type ClientOptions struct {
	Retry   RetryPolicy
	Breaker BreakerConfig
	// MaxConcurrent bounds in-flight calls to the backend (the
	// bulkhead); <= 0 means unlimited.
	MaxConcurrent int
	Clock         Clock
	// Seed drives the retry jitter stream (deterministic tests).
	Seed int64
}

// client is the shared resilient-call core: bulkhead -> retry ->
// breaker -> backend.
type client struct {
	name string
	retr *Retrier
	br   *Breaker
	bh   *Bulkhead

	errs *obs.CounterVec // reason
}

func newClient(name string, opts ClientOptions) *client {
	return &client{
		name: name,
		retr: NewRetrier(opts.Retry, opts.Clock, opts.Seed),
		br:   NewBreaker(opts.Breaker, opts.Clock),
		bh:   NewBulkhead(opts.MaxConcurrent),
	}
}

// instrument registers the shared client metric families on r:
//
//	webiq_retries_total{backend}              re-attempts issued
//	webiq_breaker_state{backend}              0 closed / 1 half-open / 2 open
//	webiq_breaker_transitions_total{backend,state}
//	webiq_backend_errors_total{backend,reason}
//
// Several clients may share one registry; the backend label keeps them
// apart.
func (c *client) instrument(r *obs.Registry) {
	c.retr.setRetryCounter(r.CounterVec("webiq_retries_total",
		"Backend call re-attempts issued by the resilient clients.", "backend").With(c.name))
	c.br.instrument(
		r.GaugeVec("webiq_breaker_state",
			"Circuit breaker state per backend: 0 closed, 1 half-open, 2 open.", "backend").With(c.name),
		&scopedCounterVec{vec: r.CounterVec("webiq_breaker_transitions_total",
			"Circuit breaker state transitions, by backend and new state.", "backend", "state"), first: c.name})
	c.errs = r.CounterVec("webiq_backend_errors_total",
		"Terminal backend call failures after retries, by backend and reason.", "backend", "reason")
}

// scopedCounterVec curries the first label value of a two-label family,
// so the breaker can bump {backend,state} with just the state.
type scopedCounterVec struct {
	vec   *obs.CounterVec
	first string
}

// With implements the single-label slice the breaker expects.
func (s *scopedCounterVec) With(state string) *obs.Counter {
	if s == nil || s.vec == nil {
		return nil
	}
	return s.vec.With(s.first, state)
}

// do runs one logical call through the resilience layers.
func (c *client) do(ctx context.Context, fn func(ctx context.Context) error) error {
	if err := c.bh.Acquire(ctx); err != nil {
		return err
	}
	defer c.bh.Release()
	err := c.retr.Do(ctx, func(ctx context.Context) error {
		if err := c.br.Allow(); err != nil {
			return err
		}
		err := fn(ctx)
		c.br.Record(err)
		return err
	})
	if err != nil {
		c.errs.With(c.name, Reason(err)).Inc()
	}
	return err
}

// BreakerState exposes the breaker position (for /stats).
func (c *client) BreakerState() BreakerState { return c.br.State() }

// OnBreakerTransition installs fn to run (on its own goroutine) on
// every breaker state change — the flight recorder hooks its
// breaker-open trigger here.
func (c *client) OnBreakerTransition(fn func(from, to BreakerState)) {
	c.br.SetTransitionHook(fn)
}

// EngineClient is the resilient search-engine client: every Search and
// NumHits passes bulkhead -> bounded retry with backoff+jitter ->
// circuit breaker -> the wrapped FallibleEngine.
type EngineClient struct {
	*client
	inner FallibleEngine
}

// NewEngineClient wraps inner (typically a FaultyEngine over
// AdaptEngine) with the resilience layers under the backend name
// "search".
func NewEngineClient(inner FallibleEngine, opts ClientOptions) *EngineClient {
	return &EngineClient{client: newClient("search", opts), inner: inner}
}

// Instrument registers the client's metrics on r.
func (c *EngineClient) Instrument(r *obs.Registry) { c.instrument(r) }

// Search implements FallibleEngine.
func (c *EngineClient) Search(ctx context.Context, query string, limit int) ([]surfaceweb.Snippet, error) {
	var out []surfaceweb.Snippet
	err := c.do(ctx, func(ctx context.Context) error {
		var err error
		out, err = c.inner.Search(ctx, query, limit)
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// NumHits implements FallibleEngine.
func (c *EngineClient) NumHits(ctx context.Context, query string) (int, error) {
	var n int
	err := c.do(ctx, func(ctx context.Context) error {
		var err error
		n, err = c.inner.NumHits(ctx, query)
		return err
	})
	if err != nil {
		return 0, err
	}
	return n, nil
}

// SourceClient is the resilient Deep-Web probing client under the
// backend name "deep".
type SourceClient struct {
	*client
	inner FallibleSource
}

// NewSourceClient wraps inner (typically a FaultySource over a
// ProbeFunc lifting the source pool) with the resilience layers.
func NewSourceClient(inner FallibleSource, opts ClientOptions) *SourceClient {
	return &SourceClient{client: newClient("deep", opts), inner: inner}
}

// Instrument registers the client's metrics on r.
func (c *SourceClient) Instrument(r *obs.Registry) { c.instrument(r) }

// Probe implements FallibleSource.
func (c *SourceClient) Probe(ctx context.Context, interfaceID, attrID, value string) (string, error) {
	var page string
	err := c.do(ctx, func(ctx context.Context) error {
		var err error
		page, err = c.inner.Probe(ctx, interfaceID, attrID, value)
		return err
	})
	if err != nil {
		return "", err
	}
	return page, nil
}
