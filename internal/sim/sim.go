// Package sim provides the string- and set-similarity primitives shared
// by the IceQ matcher and by WebIQ's instance-borrowing heuristics:
// cosine label similarity, value-set overlap, and normalized edit
// distance.
package sim

import (
	"math"
	"strings"

	"webiq/internal/nlp"
)

// LabelSim is the cosine similarity between the content-word vectors of
// two labels — Cos(A⃗, B⃗) in the paper's LabelSim.
func LabelSim(a, b string) float64 {
	return LabelVector(a).Cosine(LabelVector(b))
}

// Vector is a label's stemmed content-word vector. Callers that compare
// many label pairs (the matcher's similarity matrix) precompute one
// Vector per distinct label and take pairwise Cosines;
// LabelVector(a).Cosine(LabelVector(b)) is exactly LabelSim(a, b).
type Vector map[string]float64

// LabelVector builds the content-word vector LabelSim uses for a label.
func LabelVector(label string) Vector {
	return wordVector(label)
}

// Cosine is the cosine similarity between two precomputed vectors.
func (v Vector) Cosine(o Vector) float64 {
	return cosine(v, o)
}

func wordVector(label string) map[string]float64 {
	v := map[string]float64{}
	for _, w := range nlp.ContentWords(label) {
		v[stem(w)]++
	}
	return v
}

// stem lightly normalizes a label word so that morphological variants of
// the same root compare equal ("departing", "departure" -> "depart").
func stem(w string) string {
	switch {
	case len(w) > 5 && strings.HasSuffix(w, "ing"):
		return w[:len(w)-3]
	case len(w) > 5 && strings.HasSuffix(w, "ure"):
		return w[:len(w)-3]
	case len(w) > 6 && strings.HasSuffix(w, "ion"):
		return w[:len(w)-3]
	case len(w) > 5 && strings.HasSuffix(w, "al"):
		return w[:len(w)-2]
	case len(w) > 4 && strings.HasSuffix(w, "ed"):
		return w[:len(w)-2]
	default:
		return nlp.Singularize(w)
	}
}

func cosine(a, b map[string]float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	var dot, na, nb float64
	for w, x := range a {
		na += x * x
		if y, ok := b[w]; ok {
			dot += x * y
		}
	}
	for _, y := range b {
		nb += y * y
	}
	if dot == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// ValueOverlap measures the similarity of two value sets as the number
// of (case-folded) shared values divided by the size of the smaller set.
func ValueOverlap(a, b []string) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	return OverlapSets(FoldSet(a), FoldSet(b))
}

// FoldSet returns the distinct case-folded values of vs, the form
// OverlapSets consumes. Callers comparing one value set against many
// (the matcher) fold each set once instead of per pair.
func FoldSet(vs []string) map[string]bool {
	set := make(map[string]bool, len(vs))
	for _, v := range vs {
		set[fold(v)] = true
	}
	return set
}

// OverlapSets is ValueOverlap over already-folded sets: shared distinct
// values divided by the size of the smaller set, 0 if either is empty.
func OverlapSets(a, b map[string]bool) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	small, large := a, b
	if len(b) < len(a) {
		small, large = b, a
	}
	shared := 0
	for v := range small {
		if large[v] {
			shared++
		}
	}
	return float64(shared) / float64(len(small))
}

// SharedValues counts distinct case-folded values present in both sets.
func SharedValues(a, b []string) int {
	setA := map[string]bool{}
	for _, v := range a {
		setA[fold(v)] = true
	}
	n := 0
	seen := map[string]bool{}
	for _, v := range b {
		f := fold(v)
		if setA[f] && !seen[f] {
			n++
			seen[f] = true
		}
	}
	return n
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
