package sim

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"webiq/internal/nlp"
)

// levenshtein is the string form of the pooled DP, used by the tests.
func levenshtein(a, b string) int {
	sc := editPool.Get().(*editScratch)
	sc.fa = append(sc.fa[:0], a...)
	sc.fb = append(sc.fb[:0], b...)
	d := sc.levenshtein(sc.fa, sc.fb, -1)
	editPool.Put(sc)
	return d
}

// editSimReference is the pre-interning implementation, kept verbatim
// as the oracle for the pooled fast path.
func editSimReference(a, b string) float64 {
	a, b = fold(a), fold(b)
	if a == b {
		return 1
	}
	maxLen := len(a)
	if len(b) > maxLen {
		maxLen = len(b)
	}
	if maxLen == 0 {
		return 1
	}
	ra, rb := []rune(a), []rune(b)
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return 1 - float64(prev[len(rb)])/float64(maxLen)
}

var foldCases = []string{
	"", "  ", "Honda", " Boston ", "NEW YORK", "first-class",
	"München", "ĲSSELMEER", "İstanbul", "ΣΟΦΟΣ", "bad\xffbyte",
	"\xc3\x28", "mixedCASE and Ünïcode", "\t trimmed \n",
}

func TestFoldAppendMatchesFold(t *testing.T) {
	for _, in := range foldCases {
		want := fold(in)
		got := string(foldAppend(nil, in))
		if got != want {
			t.Errorf("foldAppend(%q) = %q, want %q", in, got, want)
		}
	}
	f := func(s string) bool { return string(foldAppend(nil, s)) == fold(s) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEditSimMatchesReference(t *testing.T) {
	for _, a := range foldCases {
		for _, b := range foldCases {
			if got, want := EditSim(a, b), editSimReference(a, b); got != want {
				t.Errorf("EditSim(%q,%q) = %v, reference %v", a, b, got, want)
			}
		}
	}
	f := func(a, b string) bool { return EditSim(a, b) == editSimReference(a, b) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEditSimAtLeastExact(t *testing.T) {
	thresholds := []float64{-0.5, 0, 0.1, 0.5, 0.75, 0.9, 0.999, 1, 1.5}
	check := func(a, b string) {
		s := EditSim(a, b)
		for _, th := range thresholds {
			if got, want := EditSimAtLeast(a, b, th), s >= th; got != want {
				t.Errorf("EditSimAtLeast(%q,%q,%v) = %v, EditSim = %v", a, b, th, got, s)
			}
		}
	}
	for _, a := range foldCases {
		for _, b := range foldCases {
			check(a, b)
		}
	}
	// Random near-miss pairs around the 0.9 threshold used by borrowing.
	rng := rand.New(rand.NewSource(1))
	alphabet := "abcdefgABCDEFG éü"
	randStr := func(n int) string {
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		return sb.String()
	}
	for i := 0; i < 500; i++ {
		a := randStr(rng.Intn(12))
		b := a
		if rng.Intn(2) == 0 {
			b = randStr(rng.Intn(12))
		} else if len(a) > 0 {
			// Mutate one byte so most pairs sit near the boundary.
			bb := []byte(a)
			bb[rng.Intn(len(bb))] = alphabet[rng.Intn(len(alphabet))]
			b = string(bb)
		}
		check(a, b)
	}
}

func TestEditSimZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; pool behavior differs under -race")
	}
	pairs := [][2]string{
		{"Boston Logan", "boston logan intl"},
		{"United Airlines", "Delta Air Lines"},
		{"economy", "Economy Plus"},
	}
	// Warm the pool so the measurement sees the steady state.
	for _, p := range pairs {
		EditSim(p[0], p[1])
		EditSimAtLeast(p[0], p[1], 0.9)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for _, p := range pairs {
			EditSim(p[0], p[1])
			EditSimAtLeast(p[0], p[1], 0.9)
		}
	})
	if allocs != 0 {
		t.Errorf("EditSim steady state allocates %.1f objects/op, want 0", allocs)
	}
}

func TestFoldSetIDsMatchesFoldSet(t *testing.T) {
	tab := nlp.NewTermTable()
	vsA := []string{"Economy", "economy ", "Business", "First Class", "Première"}
	vsB := []string{"ECONOMY", "Premium", "first class"}
	idA, idB := FoldSetIDs(vsA, tab), FoldSetIDs(vsB, tab)
	strA, strB := FoldSet(vsA), FoldSet(vsB)
	if len(idA) != len(strA) || len(idB) != len(strB) {
		t.Fatalf("ID set sizes %d,%d; string set sizes %d,%d", len(idA), len(idB), len(strA), len(strB))
	}
	if got, want := OverlapIDSets(idA, idB), OverlapSets(strA, strB); got != want {
		t.Errorf("OverlapIDSets = %v, OverlapSets = %v", got, want)
	}
	if got := OverlapIDSets(nil, idB); got != 0 {
		t.Errorf("overlap with empty = %v", got)
	}
}

func BenchmarkEditSim(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EditSim("Boston Logan International", "boston logan intl")
	}
}

func BenchmarkEditSimAtLeast(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EditSimAtLeast("Boston Logan International", "Chicago O'Hare", 0.9)
	}
}
