package sim

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// fold normalizes a value for comparison: trimmed of surrounding space
// and lower-cased. It is the string-returning form; the hot paths use
// foldAppend to reuse a caller-owned buffer instead.
func fold(s string) string { return strings.ToLower(strings.TrimSpace(s)) }

// foldAppend appends fold(s) to dst byte-for-byte and returns the
// extended slice. The output is kept exactly identical to
// strings.ToLower(strings.TrimSpace(s)) — including the replacement of
// invalid UTF-8 with U+FFFD that strings.Map performs — because folded
// values feed maps and engine queries whose behavior is pinned by the
// determinism tests.
func foldAppend(dst []byte, s string) []byte {
	s = strings.TrimSpace(s)
	for i := 0; i < len(s); {
		c := s[i]
		if c < utf8.RuneSelf {
			if 'A' <= c && c <= 'Z' {
				c += 'a' - 'A'
			}
			dst = append(dst, c)
			i++
			continue
		}
		r, w := utf8.DecodeRuneInString(s[i:])
		dst = utf8.AppendRune(dst, unicode.ToLower(r))
		i += w
	}
	return dst
}

// isASCII reports whether b contains only ASCII bytes.
func isASCII(b []byte) bool {
	for _, c := range b {
		if c >= utf8.RuneSelf {
			return false
		}
	}
	return true
}
