package sim

import (
	"testing"
	"testing/quick"
)

func TestLabelSimIdentical(t *testing.T) {
	if got := LabelSim("Departure city", "departure city"); got < 0.99 {
		t.Errorf("identical labels sim = %v", got)
	}
}

func TestLabelSimPartialOverlap(t *testing.T) {
	s := LabelSim("Departure city", "Departure date")
	if s <= 0 || s >= 1 {
		t.Errorf("partial overlap sim = %v, want in (0,1)", s)
	}
}

func TestLabelSimNoOverlap(t *testing.T) {
	if got := LabelSim("Airline", "Carrier"); got != 0 {
		t.Errorf("disjoint labels sim = %v, want 0", got)
	}
}

func TestLabelSimSingularizes(t *testing.T) {
	if got := LabelSim("Cities", "City"); got < 0.99 {
		t.Errorf("plural/singular sim = %v, want ~1", got)
	}
}

func TestLabelSimStopwords(t *testing.T) {
	// "Class of service" and "Service class" share all content after
	// stopword removal ("of" is a stopword).
	if got := LabelSim("Class of service", "Service class"); got < 0.99 {
		t.Errorf("sim = %v, want ~1", got)
	}
	// "from" is deliberately NOT a stopword: "From" must be comparable
	// to "From city" (it is the whole signal on airfare interfaces).
	if got := LabelSim("From", "From city"); got <= 0 {
		t.Errorf("sim(From, From city) = %v, want > 0", got)
	}
}

func TestLabelSimStemming(t *testing.T) {
	// Morphological variants of the same root must be comparable:
	// "Departing on" vs "Departure date" share the stem "depart".
	if got := LabelSim("Departing on", "Departure date"); got <= 0 {
		t.Errorf("sim = %v, want > 0 (stemming)", got)
	}
}

func TestLabelSimOrderedPair(t *testing.T) {
	f := func(a, b string) bool {
		x, y := LabelSim(a, b), LabelSim(b, a)
		return x == y && x >= 0 && x <= 1.0000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueOverlap(t *testing.T) {
	a := []string{"Economy", "Business", "First Class"}
	b := []string{"economy", "business", "Premium"}
	got := ValueOverlap(a, b)
	if got < 0.66 || got > 0.67 {
		t.Errorf("overlap = %v, want 2/3", got)
	}
}

func TestValueOverlapDisjoint(t *testing.T) {
	if got := ValueOverlap([]string{"a"}, []string{"b"}); got != 0 {
		t.Errorf("overlap = %v, want 0", got)
	}
}

func TestValueOverlapEmpty(t *testing.T) {
	if got := ValueOverlap(nil, []string{"a"}); got != 0 {
		t.Errorf("overlap with empty = %v", got)
	}
}

func TestValueOverlapDuplicates(t *testing.T) {
	a := []string{"x", "x", "y"}
	b := []string{"x"}
	if got := ValueOverlap(a, b); got != 1 {
		t.Errorf("overlap = %v, want 1 (duplicates ignored)", got)
	}
}

func TestSharedValues(t *testing.T) {
	a := []string{"Delta", "United", "American"}
	b := []string{"delta", "Aer Lingus", "UNITED"}
	if got := SharedValues(a, b); got != 2 {
		t.Errorf("shared = %d, want 2", got)
	}
}

func TestEditSim(t *testing.T) {
	if got := EditSim("Honda", "honda"); got != 1 {
		t.Errorf("case fold: %v", got)
	}
	if got := EditSim("Honda", "Hondas"); got < 0.8 {
		t.Errorf("near match: %v", got)
	}
	if got := EditSim("abc", "xyz"); got != 0 {
		t.Errorf("disjoint: %v", got)
	}
}

func TestEditSimBounds(t *testing.T) {
	f := func(a, b string) bool {
		s := EditSim(a, b)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
	}
	for _, c := range cases {
		if got := levenshtein(c.a, c.b); got != c.want {
			t.Errorf("levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestStem(t *testing.T) {
	cases := map[string]string{
		"departing": "depart",
		"departure": "depart",
		"location":  "locat",
		"located":   "locat",
		"arrival":   "arriv",
		"arriving":  "arriv",
		"cities":    "city",
		"city":      "city",
		"make":      "make",
	}
	for in, want := range cases {
		if got := stem(in); got != want {
			t.Errorf("stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLabelSimPrepositionContent(t *testing.T) {
	// Bare prepositional labels must be comparable — the whole basis for
	// borrowing donors for the airfare domain's "From"/"To" fields.
	if got := LabelSim("To", "Going to"); got <= 0 {
		t.Errorf("sim(To, Going to) = %v, want > 0", got)
	}
	if got := LabelSim("From", "To"); got != 0 {
		t.Errorf("sim(From, To) = %v, want 0", got)
	}
}

func TestValueOverlapBounds(t *testing.T) {
	f := func(a, b []string) bool {
		v := ValueOverlap(a, b)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
