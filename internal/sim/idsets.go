package sim

import (
	"sync"

	"webiq/internal/nlp"
)

// foldBufPool holds the byte buffers used to fold values before
// interning them, so FoldSetIDs allocates nothing for already-interned
// values.
var foldBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

// FoldSetIDs is FoldSet with interned values: the distinct case-folded
// values of vs as term IDs in tab. Because interning is injective on
// the folded strings, OverlapIDSets over two FoldSetIDs (sharing one
// table) equals OverlapSets over the corresponding FoldSets. The
// matcher builds one set per attribute and compares all pairs; with
// IDs each value is folded once and every comparison is integer-keyed.
func FoldSetIDs(vs []string, tab *nlp.TermTable) map[uint32]struct{} {
	set := make(map[uint32]struct{}, len(vs))
	bp := foldBufPool.Get().(*[]byte)
	buf := *bp
	for _, v := range vs {
		buf = foldAppend(buf[:0], v)
		set[tab.InternBytes(buf)] = struct{}{}
	}
	*bp = buf
	foldBufPool.Put(bp)
	return set
}

// OverlapIDSets is OverlapSets over interned value sets: shared
// distinct values divided by the size of the smaller set, 0 if either
// is empty.
func OverlapIDSets(a, b map[uint32]struct{}) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	small, large := a, b
	if len(b) < len(a) {
		small, large = b, a
	}
	shared := 0
	for v := range small {
		if _, ok := large[v]; ok {
			shared++
		}
	}
	return float64(shared) / float64(len(small))
}
