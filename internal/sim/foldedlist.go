package sim

import "unicode/utf8"

// FoldedList stores the case-folded forms of a list of values — each
// fold(v) plus its rune count — in one reusable arena. Callers that
// compare every value of one list against every value of another
// (borrow-donor selection is the hot case) fold each side once instead
// of once per pair, and the precomputed rune counts make the
// length-difference cut of EditSimAtLeastFolded O(1).
type FoldedList struct {
	arena []byte
	offs  []int
	runes []int
}

// Reset replaces the list contents with the folded forms of vs,
// reusing the arena across calls.
func (fl *FoldedList) Reset(vs []string) {
	fl.arena = fl.arena[:0]
	fl.offs = append(fl.offs[:0], 0)
	fl.runes = fl.runes[:0]
	for _, v := range vs {
		n := len(fl.arena)
		fl.arena = foldAppend(fl.arena, v)
		fl.offs = append(fl.offs, len(fl.arena))
		fl.runes = append(fl.runes, utf8.RuneCount(fl.arena[n:]))
	}
}

// Len reports the number of values in the list.
func (fl *FoldedList) Len() int { return len(fl.runes) }

// At returns the folded form of the i-th value. The slice aliases the
// arena: it is valid until the next Reset and must not be mutated.
func (fl *FoldedList) At(i int) []byte { return fl.arena[fl.offs[i]:fl.offs[i+1]] }

// Runes returns the rune count of the i-th folded value.
func (fl *FoldedList) Runes(i int) int { return fl.runes[i] }

// EditSimAtLeastFolded is EditSimAtLeast over pre-folded values: it
// returns exactly EditSimAtLeast(a, b, t) when fa = fold(a) with rune
// count la and fb = fold(b) with rune count lb (as produced by
// FoldedList).
func EditSimAtLeastFolded(fa []byte, la int, fb []byte, lb int, t float64) bool {
	sc := editPool.Get().(*editScratch)
	ok := sc.foldedSimAtLeast(fa, la, fb, lb, t)
	editPool.Put(sc)
	return ok
}
