//go:build race

package sim

// raceEnabled reports whether the race detector is on: its
// instrumentation adds allocations (and sync.Pool deliberately drops
// items), so allocation-count assertions are skipped under -race.
const raceEnabled = true
