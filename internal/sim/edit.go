package sim

import (
	"bytes"
	"sync"
	"unicode/utf8"
)

// editScratch holds the reusable buffers for one edit-distance
// computation: the two folded strings, their rune decodings, and the
// two DP rows. Pooling them makes EditSim allocation-free in the
// steady state; the instance-borrowing O(n²) similarity loop is the
// single largest allocation site without it.
type editScratch struct {
	fa, fb []byte
	ra, rb []rune
	prev   []int
	cur    []int
}

var editPool = sync.Pool{New: func() any { return new(editScratch) }}

// EditSim is 1 − normalized Levenshtein distance between the folded
// strings; 1.0 means identical.
func EditSim(a, b string) float64 {
	sc := editPool.Get().(*editScratch)
	v := sc.editSim(a, b)
	editPool.Put(sc)
	return v
}

func (sc *editScratch) editSim(a, b string) float64 {
	sc.fa = foldAppend(sc.fa[:0], a)
	sc.fb = foldAppend(sc.fb[:0], b)
	if bytes.Equal(sc.fa, sc.fb) {
		return 1
	}
	maxLen := len(sc.fa)
	if len(sc.fb) > maxLen {
		maxLen = len(sc.fb)
	}
	// maxLen > 0 here: equal strings (including both empty) returned 1.
	return 1 - float64(sc.levenshtein(sc.fa, sc.fb, -1))/float64(maxLen)
}

// EditSimAtLeast reports whether EditSim(a, b) >= t, computing exactly
// the same comparison while skipping most of the work for clearly
// dissimilar pairs:
//
//   - The Levenshtein distance is at least the difference in rune
//     counts, so a pair whose length difference alone pushes the
//     similarity below t is rejected without running the DP.
//   - The DP aborts as soon as a full row exceeds the largest distance
//     still admitting similarity >= t (row minima never decrease).
//
// Both cuts are exact: EditSim = 1 − d/maxLen is strictly monotone
// decreasing in the integer d (the distances and lengths involved are
// far below 2^53, so the conversions and the division by the positive
// maxLen preserve order), which makes "similarity of a lower bound on
// d is below t" imply "similarity of d is below t".
func EditSimAtLeast(a, b string, t float64) bool {
	sc := editPool.Get().(*editScratch)
	ok := sc.editSimAtLeast(a, b, t)
	editPool.Put(sc)
	return ok
}

func (sc *editScratch) editSimAtLeast(a, b string, t float64) bool {
	sc.fa = foldAppend(sc.fa[:0], a)
	sc.fb = foldAppend(sc.fb[:0], b)
	return sc.foldedSimAtLeast(sc.fa, utf8.RuneCount(sc.fa), sc.fb, utf8.RuneCount(sc.fb), t)
}

// foldedSimAtLeast is the body of editSimAtLeast over already-folded
// values with known rune counts. FoldedList callers precompute the
// counts once per value, turning the length cut into O(1) per pair.
func (sc *editScratch) foldedSimAtLeast(fa []byte, la int, fb []byte, lb int, t float64) bool {
	if bytes.Equal(fa, fb) {
		return 1 >= t
	}
	maxLen := len(fa)
	if len(fb) > maxLen {
		maxLen = len(fb)
	}
	m := float64(maxLen)

	// Largest distance dmax with 1 − dmax/maxLen >= t; start from the
	// float estimate and nudge until exact.
	dmax := int(m * (1 - t))
	if dmax < 0 {
		dmax = 0
	}
	if dmax > maxLen {
		dmax = maxLen
	}
	for dmax < maxLen && 1-float64(dmax+1)/m >= t {
		dmax++
	}
	for dmax > 0 && 1-float64(dmax)/m < t {
		dmax--
	}
	if 1-float64(dmax)/m < t {
		return false // no distance admits similarity >= t
	}

	// Length lower bound. Rune counts, not byte lengths: for non-ASCII
	// the byte-length difference can exceed the rune-level distance.
	diff := la - lb
	if diff < 0 {
		diff = -diff
	}
	if diff > dmax {
		return false
	}

	d := sc.levenshtein(fa, fb, dmax)
	return d <= dmax && 1-float64(d)/m >= t
}

// levenshtein computes the rune-level edit distance between two folded
// values. If dmax >= 0 and every entry of some DP row exceeds dmax,
// it returns dmax+1 immediately (row minima never decrease, so the
// true distance is > dmax).
func (sc *editScratch) levenshtein(fa, fb []byte, dmax int) int {
	if isASCII(fa) && isASCII(fb) {
		return levRows(sc, len(fa), len(fb), func(i, j int) bool {
			return fa[i] == fb[j]
		}, dmax)
	}
	sc.ra = appendRunes(sc.ra[:0], fa)
	sc.rb = appendRunes(sc.rb[:0], fb)
	return levRows(sc, len(sc.ra), len(sc.rb), func(i, j int) bool {
		return sc.ra[i] == sc.rb[j]
	}, dmax)
}

func appendRunes(dst []rune, b []byte) []rune {
	for i := 0; i < len(b); {
		r, w := utf8.DecodeRune(b[i:])
		dst = append(dst, r)
		i += w
	}
	return dst
}

// levRows runs the two-row Levenshtein DP of size la×lb using the
// scratch rows, with eq(i, j) comparing the i-th and j-th symbols.
func levRows(sc *editScratch, la, lb int, eq func(i, j int) bool, dmax int) int {
	if cap(sc.prev) < lb+1 {
		sc.prev = make([]int, lb+1)
		sc.cur = make([]int, lb+1)
	}
	prev, cur := sc.prev[:lb+1], sc.cur[:lb+1]
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		rowMin := i
		for j := 1; j <= lb; j++ {
			cost := 1
			if eq(i-1, j-1) {
				cost = 0
			}
			cur[j] = min3(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
			if cur[j] < rowMin {
				rowMin = cur[j]
			}
		}
		if dmax >= 0 && rowMin > dmax {
			return dmax + 1
		}
		prev, cur = cur, prev
	}
	sc.prev, sc.cur = prev, cur // keep ownership consistent after swaps
	return prev[lb]
}
