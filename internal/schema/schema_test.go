package schema

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sampleDataset() *Dataset {
	return &Dataset{
		Domain: "test", EntityName: "thing", DomainKeyword: "things",
		Interfaces: []*Interface{
			{ID: "if0", Domain: "test", Source: "s0", Attributes: []*Attribute{
				{ID: "if0/a", InterfaceID: "if0", Label: "Alpha", ConceptID: "c1",
					Instances: []string{"x", "y"}},
				{ID: "if0/b", InterfaceID: "if0", Label: "Beta", ConceptID: "c2"},
			}},
			{ID: "if1", Domain: "test", Source: "s1", Attributes: []*Attribute{
				{ID: "if1/a", InterfaceID: "if1", Label: "Alpha2", ConceptID: "c1"},
				{ID: "if1/b", InterfaceID: "if1", Label: "Beta2", ConceptID: "c2"},
				{ID: "if1/c", InterfaceID: "if1", Label: "Gamma", ConceptID: "c3"},
			}},
		},
	}
}

func TestAttributeHasInstances(t *testing.T) {
	a := &Attribute{}
	if a.HasInstances() {
		t.Error("empty attribute claims instances")
	}
	a.Instances = []string{"x"}
	if !a.HasInstances() {
		t.Error("attribute with instances denies them")
	}
	a = &Attribute{Acquired: []string{"y"}}
	if a.HasInstances() {
		t.Error("acquired-only attribute should not count as predefined")
	}
}

func TestAttributeAllInstances(t *testing.T) {
	a := &Attribute{Instances: []string{"x"}, Acquired: []string{"y", "z"}}
	got := a.AllInstances()
	want := []string{"x", "y", "z"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("AllInstances = %v, want %v", got, want)
	}
	// Predefined-only path returns the same slice without copying.
	b := &Attribute{Instances: []string{"x"}}
	if !reflect.DeepEqual(b.AllInstances(), []string{"x"}) {
		t.Error("predefined-only AllInstances wrong")
	}
}

func TestAttributeString(t *testing.T) {
	a := &Attribute{ID: "i/a", Label: "From", Instances: []string{"x"}}
	s := a.String()
	if !strings.Contains(s, "i/a") || !strings.Contains(s, "From") {
		t.Errorf("String() = %q", s)
	}
}

func TestInterfaceAttributeByID(t *testing.T) {
	ds := sampleDataset()
	ifc := ds.Interfaces[0]
	if ifc.AttributeByID("if0/a") == nil {
		t.Error("existing attribute not found")
	}
	if ifc.AttributeByID("nope") != nil {
		t.Error("missing attribute found")
	}
}

func TestDatasetAllAttributesStableOrder(t *testing.T) {
	ds := sampleDataset()
	got := ds.AllAttributes()
	if len(got) != 5 {
		t.Fatalf("got %d attributes", len(got))
	}
	if got[0].ID != "if0/a" || got[4].ID != "if1/c" {
		t.Errorf("order = %v", got)
	}
}

func TestDatasetInterfaceOf(t *testing.T) {
	ds := sampleDataset()
	a := ds.Interfaces[1].Attributes[0]
	if ifc := ds.InterfaceOf(a); ifc == nil || ifc.ID != "if1" {
		t.Errorf("InterfaceOf = %v", ifc)
	}
	if ds.InterfaceOf(&Attribute{InterfaceID: "zzz"}) != nil {
		t.Error("unknown interface resolved")
	}
}

func TestNewMatchPairNormalized(t *testing.T) {
	if NewMatchPair("b", "a") != NewMatchPair("a", "b") {
		t.Error("pair not normalized")
	}
	f := func(a, b string) bool {
		p := NewMatchPair(a, b)
		return p.A <= p.B && p == NewMatchPair(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGoldClusters(t *testing.T) {
	ds := sampleDataset()
	clusters := ds.GoldClusters()
	// c1 and c2 have two members; c3 is a singleton and excluded.
	if len(clusters) != 2 {
		t.Fatalf("clusters = %v", clusters)
	}
	for _, c := range clusters {
		if len(c) != 2 {
			t.Errorf("cluster %v size != 2", c)
		}
	}
}

func TestGoldPairs(t *testing.T) {
	ds := sampleDataset()
	pairs := ds.GoldPairs()
	if len(pairs) != 2 {
		t.Fatalf("pairs = %v", pairs)
	}
	if !pairs[NewMatchPair("if0/a", "if1/a")] {
		t.Error("missing c1 pair")
	}
	if !pairs[NewMatchPair("if0/b", "if1/b")] {
		t.Error("missing c2 pair")
	}
}

func TestGoldPairsLargerCluster(t *testing.T) {
	ds := sampleDataset()
	ds.Interfaces = append(ds.Interfaces, &Interface{
		ID: "if2", Domain: "test",
		Attributes: []*Attribute{
			{ID: "if2/a", InterfaceID: "if2", ConceptID: "c1"},
		},
	})
	pairs := ds.GoldPairs()
	// c1 now has 3 members -> 3 pairs; plus c2's 1 = 4.
	if len(pairs) != 4 {
		t.Errorf("pairs = %d, want 4", len(pairs))
	}
}

func TestJSONRoundTripPreservesAcquired(t *testing.T) {
	ds := sampleDataset()
	ds.Interfaces[0].Attributes[1].Acquired = []string{"q1", "q2"}
	var buf bytes.Buffer
	if err := ds.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds, got) {
		t.Error("round trip mismatch")
	}
}

func TestReadJSONError(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{not json")); err == nil {
		t.Error("want error on malformed JSON")
	}
}

func TestComputeStats(t *testing.T) {
	ds := sampleDataset()
	st := ds.ComputeStats()
	if st.Interfaces != 2 || st.Attributes != 5 {
		t.Errorf("stats = %+v", st)
	}
	if st.AvgAttrs != 2.5 {
		t.Errorf("avg attrs = %v", st.AvgAttrs)
	}
	// Both interfaces contain instance-less attributes.
	if st.PctInterfacesNoInst != 100 {
		t.Errorf("pct interfaces = %v", st.PctInterfacesNoInst)
	}
	// 4 of 5 attributes lack instances.
	if st.PctAttrsNoInst != 80 {
		t.Errorf("pct attrs = %v", st.PctAttrsNoInst)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	ds := &Dataset{}
	st := ds.ComputeStats()
	if st.Interfaces != 0 || st.AvgAttrs != 0 {
		t.Errorf("empty stats = %+v", st)
	}
}

func TestComputeStatsAllPredefined(t *testing.T) {
	ds := &Dataset{Interfaces: []*Interface{
		{ID: "i", Attributes: []*Attribute{
			{ID: "i/a", InterfaceID: "i", Instances: []string{"x"}},
		}},
	}}
	st := ds.ComputeStats()
	if st.PctInterfacesNoInst != 0 || st.PctAttrsNoInst != 0 {
		t.Errorf("stats = %+v", st)
	}
}
