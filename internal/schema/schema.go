// Package schema models Deep-Web query interfaces: attributes with
// labels and (possibly empty) predefined instance lists, interfaces
// grouping attributes, and domain datasets with gold-standard matches.
//
// Following the paper, "schema" and "query interface" are used
// interchangeably: an interface's schema is the set of its attributes.
package schema

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Attribute is one field of a query interface.
type Attribute struct {
	// ID uniquely identifies the attribute across the dataset, e.g.
	// "airfare/if03/a2".
	ID string `json:"id"`
	// InterfaceID is the owning interface's ID.
	InterfaceID string `json:"interface_id"`
	// Label is the attribute's visible label ("Departure city").
	Label string `json:"label"`
	// Instances are the predefined values the interface exposes for the
	// attribute (the options of a selection box). Empty for free-text
	// inputs — the pervasive case WebIQ addresses.
	Instances []string `json:"instances,omitempty"`
	// Acquired are instances discovered by WebIQ. They start empty and
	// are filled by the acquisition pipeline.
	Acquired []string `json:"acquired,omitempty"`
	// ConceptID is the hidden ground-truth concept the attribute derives
	// from. It exists only to compute gold matches and evaluation
	// metrics; no matching or acquisition code may consult it.
	ConceptID string `json:"concept_id"`
}

// HasInstances reports whether the attribute carries any predefined
// instances.
func (a *Attribute) HasInstances() bool { return len(a.Instances) > 0 }

// AllInstances returns predefined and acquired instances, predefined
// first.
func (a *Attribute) AllInstances() []string {
	if len(a.Acquired) == 0 {
		return a.Instances
	}
	out := make([]string, 0, len(a.Instances)+len(a.Acquired))
	out = append(out, a.Instances...)
	out = append(out, a.Acquired...)
	return out
}

// String renders the attribute compactly for logs and reports.
func (a *Attribute) String() string {
	return fmt.Sprintf("%s(%q,%d inst)", a.ID, a.Label, len(a.Instances))
}

// Interface is one source query interface.
type Interface struct {
	// ID uniquely identifies the interface, e.g. "airfare/if03".
	ID string `json:"id"`
	// Domain is the domain key the interface belongs to.
	Domain string `json:"domain"`
	// Source is a human-readable source name.
	Source string `json:"source"`
	// Attributes in display order.
	Attributes []*Attribute `json:"attributes"`
}

// AttributeByID returns the attribute with the given ID, or nil.
func (ifc *Interface) AttributeByID(id string) *Attribute {
	for _, a := range ifc.Attributes {
		if a.ID == id {
			return a
		}
	}
	return nil
}

// Dataset is a domain's worth of interfaces plus derived gold matches.
type Dataset struct {
	// Domain is the domain key.
	Domain string `json:"domain"`
	// EntityName and DomainKeyword carry the kb.Domain metadata needed
	// by extraction-query formulation.
	EntityName    string `json:"entity_name"`
	DomainKeyword string `json:"domain_keyword"`
	// Interfaces are the domain's query interfaces.
	Interfaces []*Interface `json:"interfaces"`
}

// AllAttributes returns every attribute across the dataset's interfaces
// in a stable order.
func (ds *Dataset) AllAttributes() []*Attribute {
	var out []*Attribute
	for _, ifc := range ds.Interfaces {
		out = append(out, ifc.Attributes...)
	}
	return out
}

// InterfaceOf returns the interface owning the given attribute, or nil.
func (ds *Dataset) InterfaceOf(a *Attribute) *Interface {
	for _, ifc := range ds.Interfaces {
		if ifc.ID == a.InterfaceID {
			return ifc
		}
	}
	return nil
}

// MatchPair is an unordered pair of attribute IDs asserted (by gold or by
// a matcher) to be semantically equivalent.
type MatchPair struct {
	A, B string
}

// NewMatchPair normalizes the pair so A < B lexicographically, making
// pairs comparable as map keys.
func NewMatchPair(a, b string) MatchPair {
	if b < a {
		a, b = b, a
	}
	return MatchPair{A: a, B: b}
}

// GoldClusters groups attribute IDs by their hidden concept; each group
// with two or more members is a gold cluster.
func (ds *Dataset) GoldClusters() [][]string {
	byConcept := map[string][]string{}
	for _, a := range ds.AllAttributes() {
		byConcept[a.ConceptID] = append(byConcept[a.ConceptID], a.ID)
	}
	keys := make([]string, 0, len(byConcept))
	for k := range byConcept {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out [][]string
	for _, k := range keys {
		ids := byConcept[k]
		if len(ids) >= 2 {
			sort.Strings(ids)
			out = append(out, ids)
		}
	}
	return out
}

// GoldPairs returns the set of gold match pairs: all pairs of attributes
// sharing a concept.
func (ds *Dataset) GoldPairs() map[MatchPair]bool {
	out := map[MatchPair]bool{}
	for _, cluster := range ds.GoldClusters() {
		for i := 0; i < len(cluster); i++ {
			for j := i + 1; j < len(cluster); j++ {
				out[NewMatchPair(cluster[i], cluster[j])] = true
			}
		}
	}
	return out
}

// WriteJSON serializes the dataset as indented JSON.
func (ds *Dataset) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ds)
}

// ReadJSON deserializes a dataset written by WriteJSON.
func ReadJSON(r io.Reader) (*Dataset, error) {
	var ds Dataset
	if err := json.NewDecoder(r).Decode(&ds); err != nil {
		return nil, fmt.Errorf("decode dataset: %w", err)
	}
	return &ds, nil
}

// Stats summarizes the instance-availability characteristics of a
// dataset — the quantities reported in columns 2–4 of Table 1.
type Stats struct {
	Interfaces int
	Attributes int
	// AvgAttrs is the average number of attributes per interface.
	AvgAttrs float64
	// PctInterfacesNoInst is the percentage of interfaces containing at
	// least one attribute without instances.
	PctInterfacesNoInst float64
	// PctAttrsNoInst is, among interfaces with instance-less attributes,
	// the percentage of attributes without instances.
	PctAttrsNoInst float64
}

// ComputeStats derives Stats from the dataset.
func (ds *Dataset) ComputeStats() Stats {
	var s Stats
	s.Interfaces = len(ds.Interfaces)
	var attrsInNoInstIfcs, noInstAttrs int
	for _, ifc := range ds.Interfaces {
		s.Attributes += len(ifc.Attributes)
		hasMissing := false
		missing := 0
		for _, a := range ifc.Attributes {
			if !a.HasInstances() {
				hasMissing = true
				missing++
			}
		}
		if hasMissing {
			attrsInNoInstIfcs += len(ifc.Attributes)
			noInstAttrs += missing
			s.PctInterfacesNoInst++
		}
	}
	if s.Interfaces > 0 {
		s.AvgAttrs = float64(s.Attributes) / float64(s.Interfaces)
		s.PctInterfacesNoInst = 100 * s.PctInterfacesNoInst / float64(s.Interfaces)
	}
	if attrsInNoInstIfcs > 0 {
		s.PctAttrsNoInst = 100 * float64(noInstAttrs) / float64(attrsInNoInstIfcs)
	}
	return s
}
