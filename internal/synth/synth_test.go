package synth

import (
	"reflect"
	"testing"

	"webiq/internal/dataset"
)

func TestSweepDeterministicAndDistinct(t *testing.T) {
	a := Sweep(20, 1)
	b := Sweep(20, 1)
	if len(a) != 20 {
		t.Fatalf("Sweep(20) gave %d scenarios", len(a))
	}
	keys := map[string]bool{}
	for i, sc := range a {
		if sc.Domain == nil || sc.Domain.Key == "" {
			t.Fatalf("scenario %d has no domain", i)
		}
		if keys[sc.Domain.Key] {
			t.Fatalf("duplicate domain key %q", sc.Domain.Key)
		}
		keys[sc.Domain.Key] = true
		if !reflect.DeepEqual(sc.Domain, b[i].Domain) {
			t.Fatalf("scenario %d not deterministic", i)
		}
		if sc.PresenceRate < 0.25 || sc.PresenceRate > 0.75 {
			t.Fatalf("scenario %d presence rate %v outside [0.25, 0.75]", i, sc.PresenceRate)
		}
	}
	// A different seed gives different vocabularies.
	c := Sweep(1, 99)
	if reflect.DeepEqual(a[0].Domain.Concepts[0].Groups, c[0].Domain.Concepts[0].Groups) {
		t.Fatal("seed does not influence generated vocabularies")
	}
}

func TestSweepCoversAxes(t *testing.T) {
	scs := Sweep(20, 1)
	styles := map[LabelStyle]bool{}
	noises := map[int]bool{}
	var ambiguous, units bool
	for _, sc := range scs {
		styles[sc.Style] = true
		noises[sc.NoiseLevel] = true
		ambiguous = ambiguous || sc.Ambiguous
		units = units || sc.Units
	}
	if len(styles) != 4 || len(noises) != 3 || !ambiguous || !units {
		t.Fatalf("axes not covered: styles=%v noises=%v zip=%v units=%v",
			styles, noises, ambiguous, units)
	}
}

func TestDomainsFeedThePipeline(t *testing.T) {
	for _, sc := range Sweep(4, 1) {
		// Concept IDs must be filled like kb's own (the gold standard
		// keys on them).
		for _, c := range sc.Domain.Concepts {
			if c.ID == "" || c.Domain != sc.Domain.Key {
				t.Fatalf("%s: concept %q missing identity", sc.Name, c.Name)
			}
			if c.Numeric == nil && len(c.AllInstances()) == 0 {
				t.Fatalf("%s: concept %q has no instances", sc.Name, c.Name)
			}
		}
		ds := dataset.Generate(sc.Domain, sc.DatasetConfig(1))
		if got := len(ds.Interfaces); got != sc.Interfaces {
			t.Fatalf("%s: %d interfaces, want %d", sc.Name, got, sc.Interfaces)
		}
		if len(ds.GoldClusters()) == 0 {
			t.Fatalf("%s: dataset has no gold clusters", sc.Name)
		}
		st := ds.ComputeStats()
		if st.Attributes == 0 {
			t.Fatalf("%s: dataset has no attributes", sc.Name)
		}
	}

	// The presence knob moves the instance-less fraction in the right
	// direction: low presence → more attributes without instances.
	lo, hi := Sweep(1, 1)[0], Sweep(5, 1)[4] // p=0.25 vs p=0.75
	if lo.PresenceRate >= hi.PresenceRate {
		t.Fatal("sweep order assumption broken")
	}
	dsLo := dataset.Generate(lo.Domain, lo.DatasetConfig(1))
	dsHi := dataset.Generate(hi.Domain, hi.DatasetConfig(1))
	if dsLo.ComputeStats().PctAttrsNoInst <= dsHi.ComputeStats().PctAttrsNoInst {
		t.Fatalf("presence rate has no effect: p=0.25 → %.1f%%, p=0.75 → %.1f%%",
			dsLo.ComputeStats().PctAttrsNoInst, dsHi.ComputeStats().PctAttrsNoInst)
	}
}

func TestCorpusConfigNoiseScaling(t *testing.T) {
	scs := Sweep(3, 1)
	var byLevel [3]float64
	for _, sc := range scs {
		byLevel[sc.NoiseLevel] = sc.CorpusConfig(1).ConfusionRate
	}
	if !(byLevel[0] < byLevel[1] && byLevel[1] < byLevel[2]) {
		t.Fatalf("noise levels not monotone: %v", byLevel)
	}
}
