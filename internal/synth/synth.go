// Package synth generates synthetic evaluation domains beyond the
// paper's five, sweeping the axes that related work identifies as hard
// for interface matching and instance acquisition: instance-presence
// rate (25–75%), corpus noise, abbreviated and prepositional-phrase
// labels, ambiguous attributes shared across concepts ("zip"), and
// unit-bearing numeric fields.
//
// Each scenario is a fully-formed *kb.Domain plus the corpus and
// dataset configurations that realize its axes, so synthetic domains
// flow through the exact same pipeline as the paper's: dataset
// generation, Surface-Web corpus construction, Deep-Web source pools,
// acquisition, and matching. The gold standard stays exact by
// construction (attributes carry their concept IDs), which is what the
// evaluation harness in internal/eval scores against.
//
// Generation is fully deterministic in (count, seed): equal inputs give
// byte-identical domains, so a committed quality baseline stays
// comparable across machines.
package synth

import (
	"fmt"
	"math/rand"
	"strings"

	"webiq/internal/dataset"
	"webiq/internal/kb"
	"webiq/internal/surfaceweb"
)

// LabelStyle selects how a scenario's concepts label themselves.
type LabelStyle string

// Label styles swept by the generator. Noun-phrase labels are the easy
// case the extraction patterns key on; abbreviated labels strain label
// similarity during matching; prepositional and verb-form labels carry
// no noun phrase, so the corpus generator plants no supporting pages
// and Surface extraction fails — forcing the borrowing components, as
// in the paper's airfare domain.
const (
	StyleNoun   LabelStyle = "noun"
	StyleAbbrev LabelStyle = "abbrev"
	StylePrep   LabelStyle = "prep"
	StyleMixed  LabelStyle = "mixed"
)

// Scenario is one synthetic evaluation domain with the knobs that
// realize its difficulty axes.
type Scenario struct {
	// Index is the scenario's position in the sweep (0-based).
	Index int
	// Name is the scenario's compact description, e.g.
	// "synth03-drone-p50-noise2-prep+zip".
	Name string
	// Domain is the generated domain; Domain.Key == Name's first
	// segment ("synth03-drone").
	Domain *kb.Domain
	// PresenceRate is the swept instance-presence rate: the probability
	// an attribute exposes a predefined instance list (0.25–0.75).
	PresenceRate float64
	// NoiseLevel in {0,1,2} scales corpus confusion/junk rates from the
	// defaults (0 = half, 1 = default, 2 = double).
	NoiseLevel int
	// Style is the label style of the scenario's concepts.
	Style LabelStyle
	// Ambiguous adds a "zip" concept whose values are postal codes —
	// the paper's ambiguous attribute that PMI validation struggles
	// with (WebPresence near zero).
	Ambiguous bool
	// Units adds a unit-bearing numeric concept ("Weight (lbs)"), the
	// measurement-unit difficulty the paper reports for real estate.
	Units bool
	// Interfaces is the dataset size (smaller than the paper's 20 so a
	// 20-domain sweep stays CI-cheap).
	Interfaces int
}

// DatasetConfig returns the dataset-generation configuration realizing
// the scenario.
func (sc *Scenario) DatasetConfig(seed int64) dataset.Config {
	cfg := dataset.DefaultConfig()
	cfg.Seed = seed
	cfg.Interfaces = sc.Interfaces
	return cfg
}

// CorpusConfig returns the corpus configuration realizing the
// scenario's noise axis. Page counts are reduced from the paper
// domains' defaults so a multi-domain sweep stays fast; the noise level
// scales the confusion and junk rates.
func (sc *Scenario) CorpusConfig(seed int64) surfaceweb.CorpusConfig {
	cfg := surfaceweb.DefaultCorpusConfig()
	cfg.Seed = seed ^ int64(0x5e15+sc.Index)
	cfg.PagesPerConcept = 40
	cfg.NoisePages = 60
	scale := []float64{0.5, 1, 2}[sc.NoiseLevel%3]
	cfg.ConfusionRate *= scale
	cfg.JunkRate *= scale
	return cfg
}

// entities is the pool of synthetic domain subjects. Each gets a
// (singular) entity name and a domain keyword.
var entities = []struct{ entity, keyword string }{
	{"camera", "cameras"},
	{"laptop", "laptops"},
	{"boat", "boats"},
	{"bicycle", "bicycles"},
	{"watch", "watches"},
	{"guitar", "guitars"},
	{"drone", "drones"},
	{"tablet", "tablets"},
	{"printer", "printers"},
	{"telescope", "telescopes"},
	{"motorcycle", "motorcycles"},
	{"keyboard", "keyboards"},
	{"monitor", "monitors"},
	{"speaker", "speakers"},
	{"scooter", "scooters"},
	{"projector", "projectors"},
	{"microphone", "microphones"},
	{"treadmill", "treadmills"},
	{"espresso machine", "espresso machines"},
	{"lawn mower", "lawn mowers"},
}

// Sweep generates n scenarios deterministically from the seed, cycling
// the difficulty axes so any prefix of the sweep still covers every
// axis: presence rate steps 25%→75% in fifths, noise level cycles
// 0/1/2, label style cycles noun/abbrev/prep/mixed, and the ambiguous
// and unit-bearing extras toggle on their own periods.
func Sweep(n int, seed int64) []*Scenario {
	out := make([]*Scenario, 0, n)
	for i := 0; i < n; i++ {
		sc := &Scenario{
			Index:        i,
			PresenceRate: 0.25 + 0.125*float64(i%5),
			NoiseLevel:   i % 3,
			Style:        []LabelStyle{StyleNoun, StyleAbbrev, StylePrep, StyleMixed}[i%4],
			Ambiguous:    i%2 == 0,
			Units:        i%3 == 0,
			Interfaces:   8,
		}
		ent := entities[i%len(entities)]
		key := fmt.Sprintf("synth%02d-%s", i, strings.ReplaceAll(ent.entity, " ", "-"))
		sc.Name = fmt.Sprintf("%s-p%.0f-noise%d-%s%s%s",
			key, sc.PresenceRate*100, sc.NoiseLevel, sc.Style,
			flag("+zip", sc.Ambiguous), flag("+units", sc.Units))
		rng := rand.New(rand.NewSource(seed ^ int64(i)<<8 ^ 0x517e))
		sc.Domain = buildDomain(key, ent.entity, ent.keyword, sc, rng)
		out = append(out, sc)
	}
	return out
}

func flag(s string, on bool) string {
	if on {
		return s
	}
	return ""
}

// Scenarios with the same index always build the same domain, so a
// sweep can be regenerated for inspection (webgen -what scenarios).

// buildDomain assembles the scenario's concept set. Every domain gets a
// core of findable concepts with generated disjoint vocabularies, plus
// the scenario's extras.
func buildDomain(key, entity, keyword string, sc *Scenario, rng *rand.Rand) *kb.Domain {
	d := &kb.Domain{
		Key:           key,
		DisplayName:   capitalize(entity),
		EntityName:    entity,
		DomainKeyword: keyword,
	}
	used := map[string]bool{}
	vocab := func(n int, suffix string) []string { return properNames(rng, n, suffix, used) }
	p := sc.PresenceRate

	// Brand: two regional groups with divergent group labels — the
	// paper's Airline/Carrier phenomenon, on every synthetic domain.
	d.Concepts = append(d.Concepts, &kb.Concept{
		Name: "brand", Type: kb.String,
		Labels: labelSet(sc.Style,
			[]string{"Brand", "Manufacturer", "Maker"},
			[]string{"Mfr", "Brand"},
			[]string{"Made by", "From maker"}),
		GroupLabels: [][]kb.LabelVariant{
			{lv("Brand", 4), lv("Maker", 1)},
			{lv("Manufacturer", 4)},
		},
		Groups:   [][]string{vocab(14, ""), vocab(14, "")},
		Presence: 1.0, PredefProb: p, Findable: true, WebPresence: 1.0,
	})
	// Model: one vocabulary, mostly free-text (the pervasive
	// instance-less case acquisition targets).
	d.Concepts = append(d.Concepts, &kb.Concept{
		Name: "model", Type: kb.String,
		Labels: labelSet(sc.Style,
			[]string{"Model", "Model name"},
			[]string{"Mdl", "Model no"},
			[]string{"Search for"}),
		Groups:   [][]string{vocab(20, "")},
		Presence: 1.0, PredefProb: p * 0.5, Findable: true, WebPresence: 0.95,
	})
	// Category: grouped vocabulary with divergent labels.
	d.Concepts = append(d.Concepts, &kb.Concept{
		Name: "category", Type: kb.String,
		Labels: labelSet(sc.Style,
			[]string{"Category", "Type", "Style"},
			[]string{"Cat", "Type"},
			[]string{"Type of " + entity}),
		Groups:   [][]string{vocab(10, " Series"), vocab(10, " Series")},
		Presence: 0.85, PredefProb: p, Findable: true, WebPresence: 0.9,
	})
	// Seller city: reuses the shared city vocabulary — realistic
	// cross-domain value overlap in the shared corpus.
	d.Concepts = append(d.Concepts, &kb.Concept{
		Name: "city", Type: kb.String,
		Labels: labelSet(sc.Style,
			[]string{"City", "Location"},
			[]string{"Loc", "City"},
			[]string{"Located in", "Near"}),
		Groups:   [][]string{kb.CitiesNA, kb.CitiesEU},
		Presence: 0.7, PredefProb: p * 0.6, Findable: true, WebPresence: 0.85,
	})
	// Price: monetary numeric.
	d.Concepts = append(d.Concepts, &kb.Concept{
		Name: "price", Type: kb.Monetary,
		Labels: labelSet(sc.Style,
			[]string{"Price", "Max price", "Price range"},
			[]string{"Max $", "Price"},
			[]string{"Up to"}),
		Numeric:  &kb.NumericSpec{Min: 50, Max: 5000, Step: 50, Monetary: true},
		Presence: 0.8, PredefProb: p, Findable: true, WebPresence: 0.7,
	})
	// Model year: plain integer.
	d.Concepts = append(d.Concepts, &kb.Concept{
		Name: "year", Type: kb.Integer,
		Labels: labelSet(sc.Style,
			[]string{"Year", "Model year"},
			[]string{"Yr", "Year"},
			[]string{"Newer than"}),
		Numeric:  &kb.NumericSpec{Min: 1998, Max: 2006, Step: 1},
		Presence: 0.6, PredefProb: p, Findable: true, WebPresence: 0.6,
	})
	if sc.Units {
		// Unit-bearing numeric field: the unit lives in the label, so
		// extraction queries carry it and mostly fail — the paper's
		// measurement-unit difficulty (square feet, acreage).
		d.Concepts = append(d.Concepts, &kb.Concept{
			Name: "weight", Type: kb.Integer,
			Labels: []kb.LabelVariant{
				lv("Weight (lbs)", 2), lv("Max weight (lbs)", 1), lv("Weight", 1),
			},
			Numeric:  &kb.NumericSpec{Min: 1, Max: 200, Step: 1},
			Presence: 0.5, PredefProb: p * 0.5, Findable: false, WebPresence: 0.08,
		})
	}
	if sc.Ambiguous {
		// Ambiguous "zip": values that look like many other numerics
		// and barely occur on the Web — acquisition should leave it
		// alone rather than pollute it.
		d.Concepts = append(d.Concepts, &kb.Concept{
			Name: "zip", Type: kb.String,
			Labels: []kb.LabelVariant{
				lv("Zip", 2), lv("Zip code", 2), lv("Near zip", 1),
			},
			Groups:   [][]string{kb.ZipCodes},
			Presence: 0.5, PredefProb: 0, Findable: false, WebPresence: 0.02,
		})
	}
	// Keyword: the never-findable generic attribute present everywhere.
	d.Concepts = append(d.Concepts, &kb.Concept{
		Name: "keyword", Type: kb.String,
		Labels:   []kb.LabelVariant{lv("Keywords", 2), lv("Keyword", 1)},
		Groups:   [][]string{kb.NoiseWords},
		Presence: 0.4, PredefProb: 0, Findable: false, WebPresence: 0.05,
	})
	finish(d)
	return d
}

func lv(text string, w float64) kb.LabelVariant { return kb.LabelVariant{Text: text, Weight: w} }

// labelSet realizes the scenario's label style: noun keeps the
// noun-phrase variants, abbrev prefers the abbreviated ones, prep
// prefers prepositional/verb forms (no corpus support), and mixed
// blends all three so interfaces of one domain disagree maximally.
func labelSet(style LabelStyle, noun, abbrev, prep []string) []kb.LabelVariant {
	weight := func(texts []string, w float64) []kb.LabelVariant {
		out := make([]kb.LabelVariant, 0, len(texts))
		for i, t := range texts {
			// Earlier variants dominate slightly, like the paper domains.
			out = append(out, lv(t, w+float64(len(texts)-i)))
		}
		return out
	}
	switch style {
	case StyleAbbrev:
		return append(weight(abbrev, 3), weight(noun, 0.5)...)
	case StylePrep:
		return append(weight(prep, 3), weight(noun, 0.5)...)
	case StyleMixed:
		return append(append(weight(noun, 1), weight(abbrev, 1)...), weight(prep, 1)...)
	default:
		return weight(noun, 2)
	}
}

// Syllable pools for generated proper names. Two-part names ("Veltrix
// Orion") keep values multi-token, which exercises phrase handling in
// the corpus and the matcher's value similarity.
var (
	onsets  = []string{"Vel", "Zan", "Mar", "Tol", "Ken", "Bri", "Lum", "Dex", "Fen", "Gal", "Hax", "Ivo", "Jor", "Qui", "Ryn", "Sol", "Tav", "Ulm", "Wex", "Yor"}
	codas   = []string{"trix", "max", "on", "ex", "ia", "or", "us", "ell", "ix", "ar", "eon", "um", "is", "av", "ox"}
	seconds = []string{"Orion", "Atlas", "Nova", "Summit", "Vertex", "Delta", "Prime", "Apex", "Horizon", "Zephyr", "Pioneer", "Quartz", "Ridge", "Falcon", "Comet"}
)

// properNames draws n distinct generated names, disjoint from every
// name previously drawn for the same domain (the used set), so concepts
// within a domain never share vocabulary by accident.
func properNames(rng *rand.Rand, n int, suffix string, used map[string]bool) []string {
	out := make([]string, 0, n)
	for len(out) < n {
		name := onsets[rng.Intn(len(onsets))] + codas[rng.Intn(len(codas))]
		if rng.Intn(2) == 0 {
			name += " " + seconds[rng.Intn(len(seconds))]
		}
		name += suffix
		if used[name] {
			continue
		}
		used[name] = true
		out = append(out, name)
	}
	return out
}

func capitalize(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

// finish fills the derived concept fields, mirroring kb's internal
// finishDomain (unexported there).
func finish(d *kb.Domain) {
	for _, c := range d.Concepts {
		c.Domain = d.Key
		c.ID = d.Key + "." + strings.ReplaceAll(c.Name, " ", "_")
	}
}
