GO ?= go

.PHONY: build vet test race bench bench-json check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The experiment sweeps are CPU-heavy; under the race detector they need
# more than the default 10m package timeout.
race:
	$(GO) test -race -timeout 30m ./...

bench:
	$(GO) test -run=^$$ -bench=. -benchmem ./...

# Machine-readable snapshot of the pipeline benchmark (seed path vs
# cached+parallel path), committed as BENCH_pipeline.json.
bench-json:
	$(GO) test -run=^$$ -bench=BenchmarkPipeline -benchmem -benchtime 3x . | $(GO) run ./cmd/benchjson > BENCH_pipeline.json

check: vet test race
