GO ?= go

.PHONY: build vet test race bench bench-json bench-gate check lint explain-demo chaos fuzz

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The experiment sweeps are CPU-heavy; under the race detector they need
# more than the default 10m package timeout.
race:
	$(GO) test -race -timeout 30m ./...

bench:
	$(GO) test -run=^$$ -bench=. -benchmem ./...

# Machine-readable snapshot of the pipeline benchmark (seed path vs
# cached+parallel path), committed as BENCH_pipeline.json.
bench-json:
	$(GO) test -run=^$$ -bench=BenchmarkPipeline -benchmem -benchtime 3x . | $(GO) run ./cmd/benchjson > BENCH_pipeline.json

# Allocation-regression gate: rerun the pipeline benchmark and compare
# allocs/op and B/op against the committed baseline. These two metrics
# are deterministic enough for CI; ns/op is too noisy on shared
# runners, so wall-clock regressions are reviewed via bench-json diffs
# instead.
bench-gate:
	$(GO) test -run=^$$ -bench=BenchmarkPipeline -benchmem -benchtime 3x . \
		| $(GO) run ./cmd/benchjson -compare BENCH_pipeline.json - \
			-max-regress 10% -metrics allocs/op,B/op

# Static analysis: vet always; staticcheck when installed (CI installs
# it; locally it is optional so the target works offline).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# Chaos suite: drive the full pipeline through every fault profile
# under the race detector, twice, plus the resilience primitives
# (retry/breaker/bulkhead), cancellation, and admission/drain tests.
# -count=2 catches state leaking between runs (stuck breakers, cache
# poisoning by injected errors) that a single pass hides.
chaos:
	$(GO) test -race -count=2 -timeout 20m \
		-run 'Chaos|Injector|Retrier|Breaker|Bulkhead|Client|Admission|ServerDrain|ParallelForCtx|AcquireAllCtx' \
		./internal/resilience/ ./internal/webiq/ ./internal/server/

# Short fuzz pass over the deep-web response-analysis heuristics,
# seeded with the injector's malformed-page corpus.
fuzz:
	$(GO) test -fuzz FuzzAnalyzeResponse -fuzztime 30s ./internal/deepweb/

# Provenance smoke test: boot the server, build a domain's unified
# interface, and assert every instance is attributed with evidence via
# /unified/{domain}/explain (see cmd/explain-demo).
explain-demo:
	$(GO) run ./cmd/explain-demo

check: vet test race
