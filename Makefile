GO ?= go

.PHONY: build vet test race bench check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The experiment sweeps are CPU-heavy; under the race detector they need
# more than the default 10m package timeout.
race:
	$(GO) test -race -timeout 30m ./...

bench:
	$(GO) test -run=^$$ -bench=. -benchmem ./...

check: vet test race
