GO ?= go

.PHONY: build vet test race bench bench-json bench-gate eval-json eval-gate check lint explain-demo chaos fuzz snapshot snapshot-verify snapshot-smoke flight-smoke cluster-smoke cluster-chaos

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The experiment sweeps are CPU-heavy; under the race detector they need
# more than the default 10m package timeout.
race:
	$(GO) test -race -timeout 30m ./...

bench:
	$(GO) test -run=^$$ -bench=. -benchmem ./...

# Machine-readable snapshot of the pipeline and cold-start benchmarks
# (seed path, cached+parallel path, the parallel-N scaling curve, and
# rebuild-vs-snapshot-load cold start), committed as BENCH_pipeline.json.
# GOMAXPROCS is pinned to 8 so the scaling curve is measured against the
# same scheduler width everywhere. ColdStart runs at -benchtime 1x: one
# iteration is a full cold start, and benchjson parses the two
# concatenated `go test` outputs as one report.
bench-json:
	( GOMAXPROCS=8 $(GO) test -run=^$$ -bench=BenchmarkPipeline -benchmem -benchtime 3x . && \
	  GOMAXPROCS=8 $(GO) test -run=^$$ -bench=BenchmarkColdStart -benchmem -benchtime 1x . ) \
		| $(GO) run ./cmd/benchjson > BENCH_pipeline.json

# Perf-regression gate: rerun the benchmarks and compare against the
# committed baseline. allocs/op and B/op are deterministic enough for a
# tight 10% bound; ns/op is noisy on shared runners, so wall clock rides
# with its own looser 25% bound — big slowdowns still fail CI, small
# jitter does not. eff% is the parallel-N scaling efficiency
# (100·speedup/N, reported by the benchmark) and xrebuild is how many
# times faster loading a snapshot is than rebuilding the same world; the
# < prefix marks both lower-is-worse, so a run whose scaling efficiency
# or snapshot-load advantage drops more than 25% below the committed
# curve fails the gate.
bench-gate:
	( GOMAXPROCS=8 $(GO) test -run=^$$ -bench=BenchmarkPipeline -benchmem -benchtime 3x . && \
	  GOMAXPROCS=8 $(GO) test -run=^$$ -bench=BenchmarkColdStart -benchmem -benchtime 1x . ) \
		| $(GO) run ./cmd/benchjson -compare BENCH_pipeline.json - \
			-max-regress 10% -metrics "allocs/op,B/op,ns/op=25%,<eff%=25%,<xrebuild=25%"

# Matching-quality snapshot: evaluate the full pipeline on the paper's
# five domains plus 20 synthetic sweep domains and write the aggregate
# per-stage precision/recall/F1 to EVAL_quality.json (the committed
# quality baseline).
eval-json:
	$(GO) run ./cmd/webiq-eval -synth 20 -runs 1 -seed 1 -q -json EVAL_quality.json

# Quality-regression gate: rerun the evaluation with the same seed and
# fail if any stage's precision/recall/F1 mean dropped more than two
# points against the committed EVAL_quality.json. The run is
# deterministic, so on an unchanged pipeline the comparison is exact.
eval-gate:
	$(GO) run ./cmd/webiq-eval -synth 20 -runs 1 -seed 1 -q -baseline EVAL_quality.json -max-drop 0.02

# Static analysis: vet always; staticcheck when installed (CI installs
# it; locally it is optional so the target works offline).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# Chaos suite: drive the full pipeline through every fault profile
# under the race detector, twice, plus the resilience primitives
# (retry/breaker/bulkhead), cancellation, and admission/drain tests.
# -count=2 catches state leaking between runs (stuck breakers, cache
# poisoning by injected errors) that a single pass hides.
chaos:
	$(GO) test -race -count=2 -timeout 20m \
		-run 'Chaos|Injector|Retrier|Breaker|Bulkhead|Client|Admission|ServerDrain|ParallelForCtx|AcquireAllCtx' \
		./internal/resilience/ ./internal/webiq/ ./internal/server/

# Short fuzz passes: the deep-web response-analysis heuristics (seeded
# with the injector's malformed-page corpus) and the binary snapshot
# loader (seeded with a real snapshot plus truncated/bit-flipped
# variants — corruption must produce an error, never a panic).
fuzz:
	$(GO) test -fuzz FuzzAnalyzeResponse -fuzztime 30s ./internal/deepweb/
	$(GO) test -fuzz FuzzLoadBytes -fuzztime 30s ./internal/snapshot/

# Build the world snapshot webiq-serve -snapshot boots from, then
# re-verify every checksum and structural invariant.
snapshot:
	$(GO) run ./cmd/webiq-snapshot build -o world.snap

snapshot-verify:
	$(GO) run ./cmd/webiq-snapshot verify world.snap

# End-to-end cold-start smoke test: build a snapshot, boot webiq-serve
# from it, and require /readyz to answer 200 (all domains ready) plus a
# rendered /unified/{domain} — the instant-cold-start contract CI holds.
snapshot-smoke:
	./scripts/snapshot_smoke.sh

# End-to-end flight-recorder smoke test: boot webiq-serve under the p30
# chaos profile with breaker-only triggers, drive concurrent traffic
# until a breaker opens, and require a diagnostic bundle that
# webiq-flight can render, whose wide events account for every 5xx and
# shed, and whose p99 trace exemplar resolves via /trace/{id}. Set
# OUT=dir to keep the bundles and report (CI uploads them).
flight-smoke:
	./scripts/flight_smoke.sh

# Cluster fault-tolerance gate: boot a 3-node replicated cluster from
# one snapshot, drive mixed load through two nodes, SIGKILL the third
# (the primary of the airfare shard) mid-run, and require every domain
# to stay servable, the non-503 error rate to stay within 1%, and a
# breaker-open-peer flight bundle on a survivor. cluster-smoke is the
# 10s CI variant; cluster-chaos adds a SIGSTOP/SIGCONT partition phase
# and runs 30s of load. Set OUT=dir to keep the bundles + loadgen
# summary (CI uploads them).
cluster-smoke:
	./scripts/cluster_chaos.sh smoke

cluster-chaos:
	./scripts/cluster_chaos.sh chaos

# Provenance smoke test: boot the server, build a domain's unified
# interface, and assert every instance is attributed with evidence via
# /unified/{domain}/explain (see cmd/explain-demo).
explain-demo:
	$(GO) run ./cmd/explain-demo

check: vet test race
