package webiq_test

import (
	"sync"
	"testing"

	"webiq"
)

var (
	sysOnce sync.Once
	sys     *webiq.System
)

func sharedSystem(t *testing.T) *webiq.System {
	t.Helper()
	sysOnce.Do(func() { sys = webiq.NewSystem(webiq.Options{}) })
	return sys
}

func TestSystemDomainKeys(t *testing.T) {
	s := sharedSystem(t)
	keys := s.DomainKeys()
	if len(keys) != 5 {
		t.Fatalf("domains = %v", keys)
	}
	seen := map[string]bool{}
	for _, k := range keys {
		seen[k] = true
	}
	for _, want := range []string{"airfare", "auto", "book", "job", "realestate"} {
		if !seen[want] {
			t.Errorf("missing domain %q", want)
		}
	}
}

func TestSystemGenerateDataset(t *testing.T) {
	s := sharedSystem(t)
	ds := s.GenerateDataset("auto")
	if len(ds.Interfaces) != 20 {
		t.Errorf("interfaces = %d", len(ds.Interfaces))
	}
	if len(ds.GoldPairs()) == 0 {
		t.Error("no gold pairs")
	}
}

func TestSystemEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end run skipped with -short")
	}
	s := sharedSystem(t)
	ds := s.GenerateDataset("job")
	_, before := s.Match(ds, 0)
	rep := s.Acquire(ds)
	if rep.SuccessRate() <= 0 {
		t.Fatal("acquisition achieved nothing")
	}
	_, after := s.Match(ds, 0)
	if after.F1 < before.F1 {
		t.Errorf("matching degraded: %.3f -> %.3f", before.F1, after.F1)
	}
	if after.F1-before.F1 < 0.02 {
		t.Errorf("acquisition gain too small: %.3f -> %.3f", before.F1, after.F1)
	}
	q, vt := s.SearchQueries()
	if q == 0 || vt <= 0 {
		t.Error("no query accounting recorded")
	}
}

func TestSystemLoadDataset(t *testing.T) {
	s := sharedSystem(t)
	ds := &webiq.Dataset{
		Domain: "book", EntityName: "book", DomainKeyword: "book",
		Interfaces: []*webiq.Interface{
			{ID: "x", Domain: "book", Attributes: []*webiq.Attribute{
				{ID: "x/a", InterfaceID: "x", Label: "Author", ConceptID: "book.author"},
			}},
		},
	}
	s.LoadDataset(ds)
	rep := s.Acquire(ds)
	if len(rep.Outcomes) != 1 {
		t.Fatalf("outcomes = %d", len(rep.Outcomes))
	}
}

func TestSystemUnknownDomainPanics(t *testing.T) {
	s := sharedSystem(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on unknown domain")
		}
	}()
	s.GenerateDataset("nope")
}

func TestOptionsDefaults(t *testing.T) {
	s := webiq.NewSystem(webiq.Options{Interfaces: 2})
	ds := s.GenerateDataset("book")
	if len(ds.Interfaces) != 2 {
		t.Errorf("interfaces = %d, want 2", len(ds.Interfaces))
	}
	if s.CorpusSize() == 0 {
		t.Error("empty corpus")
	}
}

func TestMovieExtensionEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("extension end-to-end skipped with -short")
	}
	s := webiq.NewSystem(webiq.Options{IncludeExtensions: true})
	found := false
	for _, k := range s.DomainKeys() {
		if k == "movie" {
			found = true
		}
	}
	if !found {
		t.Fatal("movie domain not registered")
	}
	ds := s.GenerateDataset("movie")
	_, before := s.Match(ds, 0)
	rep := s.Acquire(ds)
	_, after := s.Match(ds, 0)
	if rep.SuccessRate() < 40 {
		t.Errorf("movie acquisition success = %.1f%%", rep.SuccessRate())
	}
	if after.F1 < before.F1 {
		t.Errorf("movie matching degraded: %.3f -> %.3f", before.F1, after.F1)
	}
	if after.F1 < 0.9 {
		t.Errorf("movie enriched F1 = %.3f, want >= .9", after.F1)
	}
}

func TestSystemLearnThreshold(t *testing.T) {
	if testing.Short() {
		t.Skip("threshold learning reruns matching; skipped with -short")
	}
	s := sharedSystem(t)
	ds := s.GenerateDataset("auto")
	tau, asked := s.LearnThreshold(ds, 20)
	if asked > 20 {
		t.Errorf("asked %d > budget", asked)
	}
	if tau < 0 || tau > 1 {
		t.Errorf("learned tau = %v", tau)
	}
}
