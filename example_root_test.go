package webiq_test

import (
	"fmt"

	"webiq"
)

// Example shows the minimal end-to-end session: build the system,
// generate a domain, acquire instances, match, and unify.
func Example() {
	sys := webiq.NewSystem(webiq.Options{Interfaces: 4})
	ds := sys.GenerateDataset("book")
	sys.Acquire(ds)
	res, m := sys.Match(ds, 0.1)
	u := webiq.BuildUnified(ds, res)
	fmt.Printf("matched %d interfaces into %d unified attributes (F1 %.2f)\n",
		len(ds.Interfaces), len(u.Attributes), m.F1)
	// Output:
	// matched 4 interfaces into 8 unified attributes (F1 1.00)
}
