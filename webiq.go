// Package webiq is a reproduction of "WebIQ: Learning from the Web to
// Match Deep-Web Query Interfaces" (Wu, Doan, Yu — ICDE 2006): automatic
// instance acquisition for the attributes of Deep-Web query interfaces,
// and instance-enriched interface matching.
//
// The package wires three layers:
//
//   - Substrates: a synthetic Surface Web behind a search-engine
//     interface, Deep-Web sources backed by generated tables, and a
//     reconstruction of the paper's five-domain ICQ dataset. These
//     replace the live Web the paper used (see DESIGN.md).
//   - WebIQ proper: the Surface, Attr-Surface, and Attr-Deep instance
//     acquisition components and the Section-5 acquisition policy.
//   - An IceQ-style matcher that combines label and instance-domain
//     similarity and clusters attributes into match groups.
//
// A minimal session:
//
//	sys := webiq.NewSystem(webiq.Options{})
//	ds := sys.GenerateDataset("airfare")
//	report := sys.Acquire(ds)
//	result, metrics := sys.Match(ds, 0.1)
package webiq

import (
	"fmt"
	"time"

	"webiq/internal/dataset"
	"webiq/internal/deepweb"
	"webiq/internal/htmlform"
	"webiq/internal/kb"
	"webiq/internal/matcher"
	"webiq/internal/schema"
	"webiq/internal/surfaceweb"
	"webiq/internal/unify"
	iq "webiq/internal/webiq"
)

// Re-exported data model types. A Dataset holds a domain's query
// interfaces; attributes carry predefined and acquired instances.
type (
	// Dataset is a domain's worth of query interfaces plus gold matches.
	Dataset = schema.Dataset
	// Interface is one source query interface.
	Interface = schema.Interface
	// Attribute is one field of a query interface.
	Attribute = schema.Attribute
	// MatchPair is an unordered pair of attribute IDs asserted to match.
	MatchPair = schema.MatchPair
	// Metrics holds precision/recall/F-1 of a matching run.
	Metrics = matcher.Metrics
	// MatchResult holds the matcher's clusters and implied match pairs.
	MatchResult = matcher.Result
	// AcquireReport records per-attribute acquisition outcomes and the
	// per-component overhead of an acquisition run.
	AcquireReport = iq.Report
	// Components selects which acquisition components run.
	Components = iq.Components
	// UnifiedInterface is the uniform query interface built over all
	// matched sources.
	UnifiedInterface = unify.UnifiedInterface
	// UnifiedAttribute is one attribute of the unified interface.
	UnifiedAttribute = unify.UnifiedAttribute
)

// Options configures a System. The zero value gives the paper-faithful
// defaults.
type Options struct {
	// Seed drives every generator; equal seeds give identical systems.
	// Defaults to 1.
	Seed int64
	// Interfaces is the number of query interfaces per domain (paper:
	// 20).
	Interfaces int
	// K is the acquisition target per attribute (paper: 10).
	K int
	// Components selects the acquisition components; the zero value is
	// replaced by all components enabled.
	Components Components
	// MatchAlpha/MatchBeta weight label vs instance similarity (paper:
	// .6/.4).
	MatchAlpha, MatchBeta float64
	// IncludeExtensions adds the extension domains (currently: movie)
	// beyond the paper's five evaluation domains. The synthetic corpus
	// then carries pages for them too.
	IncludeExtensions bool
}

func (o *Options) fill() {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Interfaces == 0 {
		o.Interfaces = 20
	}
	if o.K == 0 {
		o.K = 10
	}
	if o.Components == (Components{}) {
		o.Components = iq.AllComponents()
	}
	if o.MatchAlpha == 0 && o.MatchBeta == 0 {
		o.MatchAlpha, o.MatchBeta = 0.6, 0.4
	}
}

// System bundles the synthetic Surface Web, the domain knowledge bases,
// and the WebIQ configuration. Construction indexes the corpus once;
// datasets and Deep-Web sources are generated per domain on demand.
type System struct {
	opts    Options
	engine  *surfaceweb.Engine
	domains []*kb.Domain
	pools   map[string]*deepweb.Pool
	cfg     iq.Config
}

// NewSystem builds a fully-wired system.
func NewSystem(opts Options) *System {
	opts.fill()
	domains := kb.Domains()
	if opts.IncludeExtensions {
		domains = kb.ExtendedDomains()
	}
	s := &System{
		opts:    opts,
		engine:  surfaceweb.NewEngine(),
		domains: domains,
		pools:   map[string]*deepweb.Pool{},
		cfg:     iq.DefaultConfig(),
	}
	s.cfg.K = opts.K
	corpusCfg := surfaceweb.DefaultCorpusConfig()
	corpusCfg.Seed = opts.Seed
	surfaceweb.BuildCorpus(s.engine, s.domains, corpusCfg)
	return s
}

// DomainKeys returns the available domain keys.
func (s *System) DomainKeys() []string {
	out := make([]string, len(s.domains))
	for i, d := range s.domains {
		out[i] = d.Key
	}
	return out
}

// GenerateDataset generates the query interfaces of one domain. It
// panics on an unknown domain key; use DomainKeys to enumerate them.
func (s *System) GenerateDataset(domain string) *Dataset {
	d := s.domain(domain)
	cfg := dataset.DefaultConfig()
	cfg.Seed = s.opts.Seed
	cfg.Interfaces = s.opts.Interfaces
	return dataset.Generate(d, cfg)
}

// LoadDataset registers an externally-built dataset (e.g. hand-written
// interfaces, as in the quickstart example) so that Deep-Web sources
// exist for its interfaces.
func (s *System) LoadDataset(ds *Dataset) {
	d := s.domain(ds.Domain)
	deepCfg := deepweb.DefaultConfig()
	deepCfg.Seed = s.opts.Seed
	s.pools[ds.Domain] = deepweb.BuildPool(ds, d, deepCfg)
}

// Acquire runs the WebIQ acquisition policy over the dataset, mutating
// the attributes' Acquired fields, and returns the report.
func (s *System) Acquire(ds *Dataset) *AcquireReport {
	d := s.domain(ds.Domain)
	pool, ok := s.pools[ds.Domain]
	if !ok {
		deepCfg := deepweb.DefaultConfig()
		deepCfg.Seed = s.opts.Seed
		pool = deepweb.BuildPool(ds, d, deepCfg)
		s.pools[ds.Domain] = pool
	}
	v := iq.NewValidator(s.engine, s.cfg)
	acq := iq.NewAcquirer(
		iq.NewSurface(s.engine, v, s.cfg),
		iq.NewAttrDeep(pool, s.cfg),
		iq.NewAttrSurface(v, s.cfg),
		s.opts.Components, s.cfg)
	acq.SetAccounting(
		func() (time.Duration, int) { return s.engine.VirtualTime(), s.engine.QueryCount() },
		func() (time.Duration, int) { return pool.VirtualTime(), pool.QueryCount() },
	)
	return acq.AcquireAll(ds)
}

// Match clusters the dataset's attributes at threshold tau and scores
// the result against the gold standard.
func (s *System) Match(ds *Dataset, tau float64) (*MatchResult, Metrics) {
	m := matcher.New(matcher.Config{
		Alpha: s.opts.MatchAlpha, Beta: s.opts.MatchBeta, Threshold: tau,
	})
	res := m.Match(ds)
	return res, matcher.Evaluate(res.Pairs, ds.GoldPairs())
}

// LearnThreshold runs IceQ's interactive threshold learning with a
// simulated user backed by the dataset's gold standard, asking at most
// budget questions. It returns the learned τ and the questions asked.
func (s *System) LearnThreshold(ds *Dataset, budget int) (float64, int) {
	m := matcher.New(matcher.Config{Alpha: s.opts.MatchAlpha, Beta: s.opts.MatchBeta})
	return m.LearnThreshold(ds, matcher.GoldOracle(ds), budget)
}

// SearchQueries returns the total number of search-engine queries issued
// so far, and the accumulated simulated retrieval time.
func (s *System) SearchQueries() (int, time.Duration) {
	return s.engine.QueryCount(), s.engine.VirtualTime()
}

// CorpusSize returns the number of pages in the synthetic Surface Web.
func (s *System) CorpusSize() int { return s.engine.NumDocs() }

// BuildUnified constructs the uniform query interface from a matching
// result — the downstream artifact Deep-Web integration is after: one
// attribute per match cluster, carrying the union of the sources'
// (predefined and acquired) instances.
func BuildUnified(ds *Dataset, res *MatchResult) *UnifiedInterface {
	return unify.Build(ds, res)
}

// RenderInterfaceHTML renders a query interface as an HTML form page.
func RenderInterfaceHTML(ifc *Interface) string {
	return htmlform.Render(ifc)
}

// ExtractInterfaceHTML recovers a query interface from a form page —
// the interface-extraction step that precedes matching in a Deep-Web
// integration pipeline. The returned attributes carry the extracted
// labels and any predefined instances found in select boxes.
func ExtractInterfaceHTML(html, interfaceID string) (*Interface, error) {
	return htmlform.Extract(html, interfaceID)
}

func (s *System) domain(key string) *kb.Domain {
	for _, d := range s.domains {
		if d.Key == key {
			return d
		}
	}
	panic(fmt.Sprintf("webiq: unknown domain %q", key))
}
