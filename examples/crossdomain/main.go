// Crossdomain runs a miniature version of the paper's full evaluation:
// all five domains, acquisition with every WebIQ component, matching at
// both thresholds, and a compact per-domain accuracy report.
//
// Run with: go run ./examples/crossdomain
package main

import (
	"fmt"
	"time"

	"webiq/internal/dataset"
	"webiq/internal/deepweb"
	"webiq/internal/kb"
	"webiq/internal/matcher"
	"webiq/internal/surfaceweb"
	"webiq/internal/webiq"
)

func main() {
	start := time.Now()
	engine := surfaceweb.NewEngine()
	surfaceweb.BuildCorpus(engine, kb.Domains(), surfaceweb.DefaultCorpusConfig())
	fmt.Printf("Surface Web: %d pages (%v)\n\n", engine.NumDocs(), time.Since(start).Round(time.Millisecond))

	fmt.Printf("%-11s %9s %12s %9s %9s %9s\n",
		"Domain", "Baseline", "AcqSuccess%", "F1+WebIQ", "F1+tau.1", "Queries")
	for _, dom := range kb.Domains() {
		ds := dataset.Generate(dom, dataset.DefaultConfig())
		pool := deepweb.BuildPool(ds, dom, deepweb.DefaultConfig())

		base := matcher.Evaluate(
			matcher.New(matcher.DefaultConfig()).Match(ds).Pairs, ds.GoldPairs())

		cfg := webiq.DefaultConfig()
		v := webiq.NewValidator(engine, cfg)
		acq := webiq.NewAcquirer(
			webiq.NewSurface(engine, v, cfg),
			webiq.NewAttrDeep(pool, cfg),
			webiq.NewAttrSurface(v, cfg),
			webiq.AllComponents(), cfg)
		q0 := engine.QueryCount()
		rep := acq.AcquireAll(ds)

		after := matcher.Evaluate(
			matcher.New(matcher.DefaultConfig()).Match(ds).Pairs, ds.GoldPairs())
		thresh := matcher.Evaluate(
			matcher.New(matcher.Config{Alpha: .6, Beta: .4, Threshold: .1}).Match(ds).Pairs,
			ds.GoldPairs())

		fmt.Printf("%-11s %9.1f %12.1f %9.1f %9.1f %9d\n",
			dom.Key, 100*base.F1, rep.SuccessRate(), 100*after.F1, 100*thresh.F1,
			engine.QueryCount()-q0)
	}
	fmt.Printf("\nTotal wall time: %v\n", time.Since(start).Round(time.Millisecond))
}
