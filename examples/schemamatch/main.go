// Schemamatch demonstrates the transfer the paper's Section 8 proposes:
// applying WebIQ's instance acquisition to *general schema matching*.
// Two relational database schemas — a library catalog and a bookstore
// inventory — are matched by treating each column as an interface
// attribute: columns with sample values contribute them as instances,
// and columns without samples get instances acquired from the Web.
//
// Run with: go run ./examples/schemamatch
package main

import (
	"fmt"
	"strings"

	"webiq"
)

// column describes one relational column: its name and (possibly empty)
// sample values pulled from the table.
type column struct {
	name    string
	samples []string
}

func main() {
	// Schema 1: a library catalog table. Some columns have sample rows,
	// some are empty (a freshly created table, or access restrictions).
	catalog := []column{
		{"title", nil},
		{"writer", nil}, // named differently from "author"
		{"publisher", []string{"Penguin", "Vintage", "Knopf"}},
		{"isbn", nil},
		{"subject", []string{"History", "Biography", "Travel"}},
	}
	// Schema 2: a bookstore inventory table.
	inventory := []column{
		{"book_title", nil},
		{"author", []string{"Stephen King", "John Grisham"}},
		{"publishing_house", []string{"Penguin", "Bantam", "Doubleday"}},
		{"isbn_number", nil},
		{"genre", []string{"Fiction", "Mystery", "Romance"}},
	}

	// Concept assignments exist only so the demo can score itself.
	concepts := map[string]string{
		"title": "title", "book_title": "title",
		"writer": "author", "author": "author",
		"publisher": "publisher", "publishing_house": "publisher",
		"isbn": "isbn", "isbn_number": "isbn",
		"subject": "category", "genre": "category",
	}

	toInterface := func(id string, cols []column) *webiq.Interface {
		ifc := &webiq.Interface{ID: id, Domain: "book", Source: id}
		for i, c := range cols {
			label := strings.ReplaceAll(c.name, "_", " ")
			ifc.Attributes = append(ifc.Attributes, &webiq.Attribute{
				ID:          fmt.Sprintf("%s/c%d", id, i),
				InterfaceID: id,
				Label:       label,
				Instances:   c.samples,
				ConceptID:   concepts[c.name],
			})
		}
		return ifc
	}

	ds := &webiq.Dataset{
		Domain: "book", EntityName: "book", DomainKeyword: "book",
		Interfaces: []*webiq.Interface{
			toInterface("catalog", catalog),
			toInterface("inventory", inventory),
		},
	}

	fmt.Println("Building the Surface Web...")
	sys := webiq.NewSystem(webiq.Options{})
	sys.LoadDataset(ds)

	_, before := sys.Match(ds, 0)
	fmt.Printf("Column matching without acquisition: F1 = %.2f\n", before.F1)

	rep := sys.Acquire(ds)
	for _, o := range rep.Outcomes {
		if o.Acquired > 0 {
			fmt.Printf("  acquired %2d values for column %q via %v\n", o.Acquired, o.Label, o.Methods)
		}
	}

	res, after := sys.Match(ds, 0)
	fmt.Printf("Column matching with acquisition:    F1 = %.2f\n\n", after.F1)
	fmt.Println("Column correspondences:")
	for _, c := range res.Clusters {
		if len(c) == 2 {
			fmt.Printf("  %s  <->  %s\n", c[0], c[1])
		}
	}
}
