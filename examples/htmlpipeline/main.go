// Htmlpipeline demonstrates the end-to-end Deep-Web integration flow
// from raw HTML: render two source form pages, extract their query
// interfaces back out of the HTML, acquire instances with WebIQ, and
// match — i.e. the full pipeline a crawler-fed integrator would run.
//
// Run with: go run ./examples/htmlpipeline
package main

import (
	"fmt"
	"log"
	"strings"

	"webiq"
)

// Two hand-written source pages in the styles of 2004 airfare sites:
// one uses <label for=...>, the other a table layout with text labels.
const pageA = `
<html><head><title>SkyQuest Fares</title></head><body>
<h1>Find a flight</h1>
<form action="/go" method="get">
  <label for="o">From city:</label> <input type="text" id="o" name="o"><br>
  <label for="d">To city:</label> <input type="text" id="d" name="d"><br>
  <label for="c">Class of service:</label>
  <select id="c" name="c">
    <option value="">-- Select --</option>
    <option>Economy</option><option>Business</option><option>First Class</option>
  </select><br>
  <label for="a">Airline:</label>
  <select id="a" name="a">
    <option value="">Any</option>
    <option>Delta</option><option>United</option><option>American</option>
    <option>Northwest</option>
  </select><br>
  <input type="submit" value="Search">
</form></body></html>`

const pageB = `
<html><head><title>EuroWings Booking</title></head><body>
<form method="post" action="search.cgi">
<table>
<tr><td>Departure city:</td><td><input type="text" name="dep"></td></tr>
<tr><td>Arrival city:</td><td><input type="text" name="arr"></td></tr>
<tr><td>Cabin:</td><td>
  <select name="cab">
    <option>Please select</option>
    <option>Economy</option><option>Premium Economy</option><option>Business</option>
  </select></td></tr>
<tr><td>Carrier:</td><td>
  <select name="car">
    <option>No preference</option>
    <option>Aer Lingus</option><option>Lufthansa</option><option>Air France</option>
    <option>KLM</option>
  </select></td></tr>
</table>
<input type="submit" value="Find">
</form></body></html>`

func main() {
	// Step 1: interface extraction from HTML.
	qa, err := webiq.ExtractInterfaceHTML(pageA, "skyquest")
	if err != nil {
		log.Fatal(err)
	}
	qb, err := webiq.ExtractInterfaceHTML(pageB, "eurowings")
	if err != nil {
		log.Fatal(err)
	}
	for _, ifc := range []*webiq.Interface{qa, qb} {
		fmt.Printf("Extracted %q (%d attributes):\n", ifc.Source, len(ifc.Attributes))
		for _, a := range ifc.Attributes {
			fmt.Printf("  %-18q instances=%v\n", a.Label, a.Instances)
		}
	}

	// The extracted attributes need concept IDs only for scoring; a real
	// deployment has no gold. Assign them here so the demo can report
	// accuracy.
	concepts := map[string]string{
		"From city": "origin", "Departure city": "origin",
		"To city": "dest", "Arrival city": "dest",
		"Class of service": "class", "Cabin": "class",
		"Airline": "airline", "Carrier": "airline",
	}
	ds := &webiq.Dataset{
		Domain: "airfare", EntityName: "flight", DomainKeyword: "airfare",
		Interfaces: []*webiq.Interface{qa, qb},
	}
	for _, ifc := range ds.Interfaces {
		ifc.Domain = "airfare"
		for _, a := range ifc.Attributes {
			a.ConceptID = concepts[a.Label]
		}
	}

	// Step 2: acquisition + matching.
	fmt.Println("\nBuilding substrates and running WebIQ...")
	sys := webiq.NewSystem(webiq.Options{})
	sys.LoadDataset(ds)
	sys.Acquire(ds)

	res, m := sys.Match(ds, 0)
	fmt.Printf("\nMatches (P=%.2f R=%.2f F1=%.2f):\n", m.Precision, m.Recall, m.F1)
	for _, c := range res.Clusters {
		if len(c) < 2 {
			continue
		}
		var parts []string
		for _, id := range c {
			for _, ifc := range ds.Interfaces {
				if a := ifc.AttributeByID(id); a != nil {
					parts = append(parts, fmt.Sprintf("%s:%q", ifc.Source, a.Label))
				}
			}
		}
		fmt.Println("  " + strings.Join(parts, "  <->  "))
	}
}
