// Quickstart: reproduce the paper's Figure 1 — two airfare query
// interfaces Qa and Qb — acquire instances for their attributes with
// WebIQ, and match them.
//
// Qa: From city, Departure date, Airline (NA instances), Class of
// service, Number of passengers.
// Qb: Departure city, Departure on, Carrier (EU instances), Cabin,
// Adults.
//
// At baseline, Airline/Carrier cannot match (no common label word, and
// the instance lists are regionally disjoint). After WebIQ gathers and
// borrows instances, they do.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"webiq/internal/dataset"
	"webiq/internal/deepweb"
	"webiq/internal/kb"
	"webiq/internal/matcher"
	"webiq/internal/schema"
	"webiq/internal/surfaceweb"
	"webiq/internal/unify"
	"webiq/internal/webiq"
)

func main() {
	// Figure 1's two interfaces, built by hand.
	qa := &schema.Interface{
		ID: "qa", Domain: "airfare", Source: "figure-1-Qa",
		Attributes: []*schema.Attribute{
			{ID: "qa/a1", InterfaceID: "qa", Label: "From city", ConceptID: "airfare.origin_city"},
			{ID: "qa/a2", InterfaceID: "qa", Label: "Departure date", ConceptID: "airfare.departure_date"},
			{ID: "qa/a3", InterfaceID: "qa", Label: "Number of passengers", ConceptID: "airfare.passengers",
				Instances: []string{"1", "2", "3", "4", "5", "6"}},
			{ID: "qa/a4", InterfaceID: "qa", Label: "Class of service", ConceptID: "airfare.cabin_class",
				Instances: []string{"Economy", "Business", "First Class"}},
			{ID: "qa/a5", InterfaceID: "qa", Label: "Airline", ConceptID: "airfare.airline",
				Instances: []string{"Air Canada", "American", "Delta", "United", "Northwest", "Southwest"}},
		},
	}
	qb := &schema.Interface{
		ID: "qb", Domain: "airfare", Source: "figure-1-Qb",
		Attributes: []*schema.Attribute{
			{ID: "qb/b1", InterfaceID: "qb", Label: "Departure city", ConceptID: "airfare.origin_city"},
			{ID: "qb/b2", InterfaceID: "qb", Label: "Departure on", ConceptID: "airfare.departure_date"},
			{ID: "qb/b3", InterfaceID: "qb", Label: "Carrier", ConceptID: "airfare.airline",
				Instances: []string{"Aer Lingus", "British Airways", "Lufthansa", "Air France", "KLM", "Iberia"}},
			{ID: "qb/b4", InterfaceID: "qb", Label: "Cabin", ConceptID: "airfare.cabin_class",
				Instances: []string{"Economy", "Premium Economy", "Business"}},
			{ID: "qb/b5", InterfaceID: "qb", Label: "Adults", ConceptID: "airfare.passengers",
				Instances: []string{"1", "2", "3", "4"}},
		},
	}
	ds := &schema.Dataset{
		Domain: "airfare", EntityName: "flight", DomainKeyword: "airfare",
		Interfaces: []*schema.Interface{qa, qb},
	}

	// The substrates: a synthetic Surface Web and Deep-Web sources.
	fmt.Println("Building the Surface Web and Deep-Web sources...")
	engine := surfaceweb.NewEngine()
	surfaceweb.BuildCorpus(engine, kb.Domains(), surfaceweb.DefaultCorpusConfig())
	dom := kb.DomainByKey("airfare")
	pool := deepweb.BuildPool(ds, dom, deepweb.DefaultConfig())
	_ = dataset.DefaultConfig() // (the generator is unused here: interfaces are hand-built)

	// Baseline matching: no instances for A1/B1, A2/B2; Airline/Carrier
	// dissimilar.
	match := func(header string) {
		res := matcher.New(matcher.DefaultConfig()).Match(ds)
		m := matcher.Evaluate(res.Pairs, ds.GoldPairs())
		fmt.Printf("\n%s  (P=%.2f R=%.2f F1=%.2f)\n", header, m.Precision, m.Recall, m.F1)
		for _, c := range res.Clusters {
			if len(c) >= 2 {
				var labels []string
				for _, id := range c {
					for _, ifc := range ds.Interfaces {
						if a := ifc.AttributeByID(id); a != nil {
							labels = append(labels, fmt.Sprintf("%s=%q", id, a.Label))
						}
					}
				}
				fmt.Println("  match:", labels)
			}
		}
	}
	match("Baseline matches (labels + predefined instances only):")

	// WebIQ acquisition.
	cfg := webiq.DefaultConfig()
	v := webiq.NewValidator(engine, cfg)
	acq := webiq.NewAcquirer(
		webiq.NewSurface(engine, v, cfg),
		webiq.NewAttrDeep(pool, cfg),
		webiq.NewAttrSurface(v, cfg),
		webiq.AllComponents(), cfg)
	rep := acq.AcquireAll(ds)

	fmt.Println("\nAcquired instances:")
	for _, o := range rep.Outcomes {
		if o.Acquired == 0 {
			continue
		}
		a := findAttr(ds, o.AttrID)
		show := a.Acquired
		if len(show) > 6 {
			show = show[:6]
		}
		fmt.Printf("  %-8s %-22q via=%-22v %v...\n", o.AttrID, o.Label, o.Methods, show)
	}

	match("Matches after WebIQ:")

	// The downstream artifact: the uniform query interface.
	res := matcher.New(matcher.DefaultConfig()).Match(ds)
	u := unify.Build(ds, res)
	fmt.Println("\nUnified query interface:")
	for _, ua := range u.Attributes {
		show := ua.Instances
		if len(show) > 5 {
			show = show[:5]
		}
		fmt.Printf("  %-22q coverage=%.0f%%  instances=%v\n", ua.Label, 100*ua.Coverage, show)
	}
}

func findAttr(ds *schema.Dataset, id string) *schema.Attribute {
	for _, ifc := range ds.Interfaces {
		if a := ifc.AttributeByID(id); a != nil {
			return a
		}
	}
	return nil
}
