// Deepprobe demonstrates the Attr-Deep component (Section 4 of the
// paper): validating borrowed instances by probing the attribute's own
// Deep-Web source and analyzing the response page.
//
// The paper's motivating example: both "from January" and "from Chicago"
// are frequent on the Surface Web, but querying an airfare source with
// from=Chicago yields results while from=January does not.
//
// Run with: go run ./examples/deepprobe
package main

import (
	"fmt"

	"webiq/internal/dataset"
	"webiq/internal/deepweb"
	"webiq/internal/kb"
	"webiq/internal/schema"
	"webiq/internal/webiq"
)

func main() {
	dom := kb.DomainByKey("airfare")
	ds := dataset.Generate(dom, dataset.DefaultConfig())
	cfg := deepweb.DefaultConfig()
	cfg.PartialQueryProb = 1 // keep the demo deterministic
	pool := deepweb.BuildPool(ds, dom, cfg)

	// Find a free-text origin-city attribute backed by a source.
	var attr *schema.Attribute
	for _, a := range ds.AllAttributes() {
		if a.ConceptID == "airfare.origin_city" && !a.HasInstances() {
			attr = a
			break
		}
	}
	if attr == nil {
		fmt.Println("no free-text origin attribute in this dataset draw")
		return
	}
	src := pool.Source(attr.InterfaceID)
	fmt.Printf("Probing source %s, attribute %q (%s)\n\n",
		src.Interface().Source, attr.Label, attr.ID)

	// Individual probes: the paper's from=Chicago vs from=January.
	for _, value := range []string{"Chicago", "Boston", "January", "Economy", "$500"} {
		page := src.Probe(attr.ID, value)
		ok := deepweb.AnalyzeResponse(page)
		fmt.Printf("  %s=%q -> %v\n", attr.Label, value, verdict(ok))
	}

	// The full Attr-Deep flow with the one-third rule.
	wcfg := webiq.DefaultConfig()
	ad := webiq.NewAttrDeep(pool, wcfg)

	cities := []string{"Boston", "Chicago", "Seattle", "Denver", "Miami", "Atlanta", "Portland", "Austin"}
	months := []string{"January", "February", "March", "April", "May", "June"}

	accepted, ok := ad.ValidateBorrowed(attr.InterfaceID, attr.ID, cities)
	fmt.Printf("\nBorrowed city instances: accepted=%v (%d values)\n", ok, len(accepted))
	accepted, ok = ad.ValidateBorrowed(attr.InterfaceID, attr.ID, months)
	fmt.Printf("Borrowed month instances: accepted=%v (%d values)\n", ok, len(accepted))

	fmt.Printf("\nDeep-Web usage: %d probes, %.1f simulated minutes\n",
		pool.QueryCount(), pool.VirtualTime().Minutes())
}

func verdict(ok bool) string {
	if ok {
		return "accepted (result page)"
	}
	return "rejected (error / empty page)"
}
