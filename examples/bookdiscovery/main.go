// Bookdiscovery demonstrates the Surface component in isolation
// (Section 2 of the paper): label syntax analysis, extraction-query
// formulation, snippet extraction, outlier removal, and PMI-based Web
// validation — for attributes of a bookstore interface.
//
// Run with: go run ./examples/bookdiscovery
package main

import (
	"fmt"

	"webiq/internal/kb"
	"webiq/internal/nlp"
	"webiq/internal/schema"
	"webiq/internal/surfaceweb"
	"webiq/internal/webiq"
)

func main() {
	engine := surfaceweb.NewEngine()
	surfaceweb.BuildCorpus(engine, kb.Domains(), surfaceweb.DefaultCorpusConfig())
	fmt.Printf("Surface Web ready: %d pages\n\n", engine.NumDocs())

	ifc := &schema.Interface{
		ID: "store", Domain: "book", Source: "example-bookstore",
		Attributes: []*schema.Attribute{
			{ID: "store/title", InterfaceID: "store", Label: "Title"},
			{ID: "store/author", InterfaceID: "store", Label: "Author"},
			{ID: "store/publisher", InterfaceID: "store", Label: "Publisher"},
			{ID: "store/isbn", InterfaceID: "store", Label: "ISBN"},
		},
	}
	ds := &schema.Dataset{
		Domain: "book", EntityName: "book", DomainKeyword: "book",
		Interfaces: []*schema.Interface{ifc},
	}

	cfg := webiq.DefaultConfig()
	v := webiq.NewValidator(engine, cfg)
	surface := webiq.NewSurface(engine, v, cfg)

	a := ifc.AttributeByID("store/author")

	// Step 1: label syntax analysis.
	ls := nlp.AnalyzeLabel(a.Label)
	fmt.Printf("Label %q analyzed as %s\n", a.Label, ls.Form)

	// Step 2: extraction queries (the paper's running example yields
	// `"authors such as" +book +title +isbn`).
	np := ls.NPs[0]
	fmt.Println("\nExtraction queries:")
	queries := webiq.FormulateQueries(np, ds.EntityName, ds.DomainKeyword,
		[]string{"Title", "ISBN"}, cfg)
	for _, q := range queries {
		fmt.Printf("  [%s] %s\n", q.Pattern, q.Query)
	}

	// Step 3: snippets and raw candidates.
	fmt.Println("\nSample snippets and extracted candidates:")
	shown := 0
	for _, q := range queries {
		for _, snip := range engine.Search(q.Query, 2) {
			cands := webiq.ExtractFromSnippet(q, snip.Text)
			if len(cands) == 0 || shown >= 4 {
				continue
			}
			shown++
			fmt.Printf("  snippet: %.90s...\n    -> %v\n", snip.Text, cands)
		}
	}

	// Step 4: full pipeline (extraction + outlier removal + validation).
	fmt.Println("\nDiscovered instances per attribute:")
	for _, attr := range ifc.Attributes {
		got := surface.DiscoverInstances(attr, ifc, ds)
		fmt.Printf("  %-10s -> %d instances %v\n", attr.Label, len(got), head(got, 6))
	}

	fmt.Printf("\nSearch-engine usage: %d queries, %.1f simulated minutes\n",
		engine.QueryCount(), engine.VirtualTime().Minutes())
}

func head(s []string, n int) []string {
	if len(s) > n {
		return s[:n]
	}
	return s
}
