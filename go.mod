module webiq

go 1.22
